package sim

import (
	"math"

	"dnastore/internal/dna"
	"dnastore/internal/edit"
	"dnastore/internal/xrand"
)

// LearnedProfile is the data-driven wetlab simulator of §V-B. It is trained
// purely on paired clean/noisy strands: each pair is aligned with
// Needleman–Wunsch and the alignment operations are tabulated by relative
// strand position (bucketed) and by the clean nucleotide. The model captures
// exactly the structure the paper says naive simulators miss:
//
//   - position-dependent error rates (per-bucket tables);
//   - unequal insertion/deletion/substitution likelihoods, conditioned on
//     the nucleotide;
//   - error bursts (geometric run-length fits for indel runs);
//   - per-read quality overdispersion (log-normal factor moment-matched to
//     the excess variance of per-read error rates);
//   - substitution target bias and insertion stutter.
//
// In this reproduction LearnedProfile plays the role of the paper's trained
// RNN for the headline Table I / Fig. 3 experiments; the faithful GRU
// sequence-to-sequence model is RNNSimulator (rnn.go).
type LearnedProfile struct {
	buckets int

	// Event-start probabilities per (bucket, base).
	pDel [][4]float64
	pSub [][4]float64
	pIns [][4]float64

	// Geometric burst-length parameters (success probability).
	delGeom float64
	insGeom float64

	// Substitution target distribution per clean base.
	subTo [4][4]float64

	// Insertion stutter probability (insert copy of previous base).
	stutter float64

	// Log-normal per-read quality sigma.
	qualitySigma float64
}

// Buckets returns the number of positional buckets of the model.
func (p *LearnedProfile) Buckets() int { return p.buckets }

// Name implements Channel.
func (p *LearnedProfile) Name() string { return "learned-profile" }

// shrink applies Bayesian shrinkage of an empirical rate toward the global
// rate using s pseudo-opportunities, stabilizing sparse buckets.
func shrink(events, opportunities float64, global float64) float64 {
	const s = 25.0
	return (events + s*global) / (opportunities + s)
}

// TrainProfile fits a LearnedProfile to paired data using the given number
// of positional buckets (24 is a good default for 100–200 nt strands).
func TrainProfile(pairs []Pair, buckets int) *LearnedProfile {
	if buckets <= 0 {
		buckets = 24
	}
	type cell struct {
		opp, del, sub, ins float64
	}
	table := make([][4]cell, buckets)
	var subTo [4][4]float64
	var delRuns, delTotal, insRuns, insTotal float64
	var insBases, stutterBases float64
	var rates []float64

	for _, pr := range pairs {
		if len(pr.Clean) == 0 {
			continue
		}
		ops, dist := edit.Align(pr.Clean, pr.Noisy)
		rates = append(rates, float64(dist)/float64(len(pr.Clean)))
		bucketOf := func(i int) int {
			b := i * buckets / len(pr.Clean)
			if b >= buckets {
				b = buckets - 1
			}
			return b
		}
		i, j := 0, 0 // clean / noisy cursors
		runDel, runIns := 0, 0
		flushDel := func() {
			if runDel > 0 {
				delRuns++
				delTotal += float64(runDel)
				runDel = 0
			}
		}
		flushIns := func() {
			if runIns > 0 {
				insRuns++
				insTotal += float64(runIns)
				runIns = 0
			}
		}
		for _, op := range ops {
			switch op {
			case edit.Match, edit.Sub:
				flushDel()
				flushIns()
				b := pr.Clean[i]
				c := &table[bucketOf(i)][b]
				c.opp++
				if op == edit.Sub {
					c.sub++
					subTo[b][pr.Noisy[j]]++
				}
				i++
				j++
			case edit.Del:
				flushIns()
				b := pr.Clean[i]
				c := &table[bucketOf(i)][b]
				c.opp++
				if runDel == 0 {
					c.del++ // burst start
				}
				runDel++
				i++
			case edit.Ins:
				flushDel()
				// Attribute the insertion to the clean position it precedes.
				pos := i
				if pos >= len(pr.Clean) {
					pos = len(pr.Clean) - 1
				}
				if runIns == 0 {
					bb := pr.Clean[pos]
					table[bucketOf(pos)][bb].ins++
				}
				runIns++
				insBases++
				if j > 0 && pr.Noisy[j] == pr.Noisy[j-1] {
					stutterBases++
				}
				j++
			}
		}
		flushDel()
		flushIns()
	}

	p := &LearnedProfile{buckets: buckets}
	p.pDel = make([][4]float64, buckets)
	p.pSub = make([][4]float64, buckets)
	p.pIns = make([][4]float64, buckets)

	// Global rates for shrinkage.
	var gOpp, gDel, gSub, gIns float64
	for _, row := range table {
		for b := 0; b < 4; b++ {
			gOpp += row[b].opp
			gDel += row[b].del
			gSub += row[b].sub
			gIns += row[b].ins
		}
	}
	if gOpp == 0 {
		return p // untrained model: never injects errors
	}
	globDel, globSub, globIns := gDel/gOpp, gSub/gOpp, gIns/gOpp
	for t := 0; t < buckets; t++ {
		for b := 0; b < 4; b++ {
			c := table[t][b]
			p.pDel[t][b] = shrink(c.del, c.opp, globDel)
			p.pSub[t][b] = shrink(c.sub, c.opp, globSub)
			p.pIns[t][b] = shrink(c.ins, c.opp, globIns)
		}
	}

	// Geometric burst parameters from mean run lengths.
	p.delGeom = geomFromMean(delTotal, delRuns)
	p.insGeom = geomFromMean(insTotal, insRuns)

	// Substitution target distributions (uniform fallback).
	for b := 0; b < 4; b++ {
		total := 0.0
		for t := 0; t < 4; t++ {
			total += subTo[b][t]
		}
		for t := 0; t < 4; t++ {
			if total > 0 {
				p.subTo[b][t] = subTo[b][t] / total
			} else if dna.Base(t) != dna.Base(b) {
				p.subTo[b][t] = 1.0 / 3.0
			}
		}
	}

	// Stutter probability: inserted bases match the previous base at rate
	// 1/4 by chance; anything above that is stutter.
	if insBases > 0 {
		frac := stutterBases / insBases
		p.stutter = math.Max(0, (frac-0.25)/0.75)
	}

	// Per-read overdispersion: excess of the observed variance of per-read
	// error rates over the binomial expectation, moment-matched to a
	// log-normal quality factor.
	p.qualitySigma = fitQualitySigma(rates, pairs)

	// Self-calibration: minimum-edit alignments merge adjacent errors, so a
	// model fitted from them systematically under-produces edits when its
	// own output is re-measured the same way. Generate from the model on
	// (held-in) training cleans, re-measure, and scale the event rates so
	// the generated aggregate rate matches the training data's.
	target := 0.0
	for _, r := range rates {
		target += r
	}
	target /= float64(len(rates))
	if target > 0 {
		sample := pairs
		if len(sample) > 200 {
			sample = sample[:200]
		}
		rng := xrand.New(0xca11b) //dnalint:allow seedflow -- internal self-calibration stream: TrainProfile takes no seed, and a fixed stream keeps the fitted profile reproducible
		var gen []Pair
		for _, pr := range sample {
			gen = append(gen, Pair{Clean: pr.Clean, Noisy: p.Transmit(rng, pr.Clean)})
		}
		if measured := MeasureErrorRate(gen); measured > 0 {
			scale := target / measured
			if scale < 0.5 {
				scale = 0.5
			}
			if scale > 2 {
				scale = 2
			}
			for t := 0; t < buckets; t++ {
				for b := 0; b < 4; b++ {
					p.pDel[t][b] *= scale
					p.pSub[t][b] *= scale
					p.pIns[t][b] *= scale
				}
			}
		}
	}
	return p
}

func geomFromMean(total, runs float64) float64 {
	if runs == 0 {
		return 1
	}
	mean := total / runs
	pg := 1 / mean
	if pg > 1 {
		pg = 1
	}
	if pg < 0.05 {
		pg = 0.05
	}
	return pg
}

func fitQualitySigma(rates []float64, pairs []Pair) float64 {
	if len(rates) < 2 {
		return 0
	}
	var mean float64
	for _, r := range rates {
		mean += r
	}
	mean /= float64(len(rates))
	if mean == 0 {
		return 0
	}
	var variance, meanLen float64
	for _, r := range rates {
		variance += (r - mean) * (r - mean)
	}
	variance /= float64(len(rates) - 1)
	for _, p := range pairs {
		meanLen += float64(len(p.Clean))
	}
	meanLen /= float64(len(pairs))
	binomial := mean / meanLen // ≈ p(1-p)/L
	excess := variance - binomial
	if excess <= 0 {
		return 0
	}
	disp := math.Sqrt(excess) / mean
	return math.Sqrt(math.Log(1 + disp*disp))
}

// Transmit implements Channel by sampling from the fitted model.
func (p *LearnedProfile) Transmit(rng *xrand.RNG, strand dna.Seq) dna.Seq {
	if len(strand) == 0 || p.buckets == 0 || len(p.pDel) == 0 {
		return strand.Clone()
	}
	quality := 1.0
	if p.qualitySigma > 0 {
		quality = math.Exp(p.qualitySigma*rng.NormFloat64() - p.qualitySigma*p.qualitySigma/2)
	}
	clampP := func(v float64) float64 {
		if v > 0.9 {
			return 0.9
		}
		return v
	}
	out := make(dna.Seq, 0, len(strand)+8)
	for i := 0; i < len(strand); i++ {
		b := strand[i]
		t := i * p.buckets / len(strand)
		if t >= p.buckets {
			t = p.buckets - 1
		}
		if rng.Bool(clampP(p.pIns[t][b] * quality)) {
			burst := rng.Geometric(p.insGeom)
			for k := 0; k < burst; k++ {
				if len(out) > 0 && rng.Bool(p.stutter) {
					out = append(out, out[len(out)-1])
				} else {
					out = append(out, dna.Base(rng.Intn(4)))
				}
			}
		}
		u := rng.Float64()
		pd := clampP(p.pDel[t][b] * quality)
		ps := clampP(p.pSub[t][b] * quality)
		switch {
		case u < pd:
			burst := rng.Geometric(p.delGeom)
			i += burst - 1
		case u < pd+ps:
			out = append(out, sampleSub(rng, p.subTo[b], b))
		default:
			out = append(out, b)
		}
	}
	return out
}
