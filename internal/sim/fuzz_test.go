package sim

import (
	"testing"
	"testing/quick"

	"dnastore/internal/dna"
	"dnastore/internal/xrand"
)

// channelsUnderTest returns every channel at a moderately high severity.
func channelsUnderTest() []Channel {
	strands := randStrands(81, 60, 40)
	profile := TrainProfile(GeneratePairs(82, NewReferenceWetlab(), strands, 2), 12)
	return []Channel{
		NewIIDChannel(0.1, 0.1, 0.1),
		DefaultSOLQC(0.2),
		NewReferenceWetlab(),
		profile,
	}
}

// TestChannelsProduceValidBases: property test — every channel's output
// contains only valid bases and never panics, for arbitrary inputs.
func TestChannelsProduceValidBases(t *testing.T) {
	for _, ch := range channelsUnderTest() {
		ch := ch
		f := func(seed uint64, raw []byte) bool {
			if len(raw) > 200 {
				raw = raw[:200]
			}
			s := make(dna.Seq, len(raw))
			for i, b := range raw {
				s[i] = dna.Base(b & 3)
			}
			out := ch.Transmit(xrand.New(seed), s)
			for _, b := range out {
				if b > 3 {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", ch.Name(), err)
		}
	}
}

// TestChannelsBoundedExpansion: no channel should blow a read up beyond a
// small multiple of the input length (bursts are geometric, so tails exist,
// but 3× on a 100-base strand would indicate a runaway loop).
func TestChannelsBoundedExpansion(t *testing.T) {
	rng := xrand.New(83)
	s := dna.Random(rng, 100)
	for _, ch := range channelsUnderTest() {
		for i := 0; i < 200; i++ {
			out := ch.Transmit(rng, s)
			if len(out) > 3*len(s) {
				t.Errorf("%s: read grew to %d bases from %d", ch.Name(), len(out), len(s))
				break
			}
		}
	}
}

// TestChannelsDoNotMutateInput: the clean strand must be untouched.
func TestChannelsDoNotMutateInput(t *testing.T) {
	rng := xrand.New(84)
	s := dna.Random(rng, 80)
	snapshot := s.Clone()
	for _, ch := range channelsUnderTest() {
		for i := 0; i < 20; i++ {
			ch.Transmit(rng, s)
		}
		if !s.Equal(snapshot) {
			t.Fatalf("%s mutated the input strand", ch.Name())
		}
	}
}

// TestCalibrationSelfConsistency: the learned profile's generated aggregate
// rate must track the training rate within 15% after self-calibration.
func TestCalibrationSelfConsistency(t *testing.T) {
	ref := NewReferenceWetlab()
	strands := randStrands(85, 300, 110)
	train := GeneratePairs(86, ref, strands, 2)
	model := TrainProfile(train, 24)
	gen := GeneratePairs(87, model, strands[:150], 2)
	trainRate := MeasureErrorRate(train)
	genRate := MeasureErrorRate(gen)
	if genRate < trainRate*0.85 || genRate > trainRate*1.15 {
		t.Fatalf("calibrated model rate %v vs training rate %v", genRate, trainRate)
	}
}
