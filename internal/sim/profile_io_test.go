package sim

import (
	"encoding/json"
	"testing"

	"dnastore/internal/xrand"
)

func TestProfileJSONRoundTrip(t *testing.T) {
	ref := NewReferenceWetlab()
	strands := randStrands(101, 150, 90)
	model := TrainProfile(GeneratePairs(102, ref, strands, 2), 12)

	blob, err := json.Marshal(model)
	if err != nil {
		t.Fatal(err)
	}
	var restored LearnedProfile
	if err := json.Unmarshal(blob, &restored); err != nil {
		t.Fatal(err)
	}
	// The restored model must generate byte-identical reads for the same
	// RNG stream.
	a, b := xrand.New(5), xrand.New(5)
	for i := 0; i < 30; i++ {
		s := strands[i]
		if !model.Transmit(a, s).Equal(restored.Transmit(b, s)) {
			t.Fatalf("restored model diverged on strand %d", i)
		}
	}
	if restored.Buckets() != model.Buckets() {
		t.Fatal("buckets lost")
	}
}

func TestProfileJSONRejectsCorruptInput(t *testing.T) {
	var p LearnedProfile
	if err := json.Unmarshal([]byte(`{"version":99}`), &p); err == nil {
		t.Fatal("wrong version accepted")
	}
	if err := json.Unmarshal([]byte(`{"version":1,"buckets":5,"p_del":[]}`), &p); err == nil {
		t.Fatal("inconsistent rate tables accepted")
	}
	if err := json.Unmarshal([]byte(`{not json`), &p); err == nil {
		t.Fatal("junk accepted")
	}
}
