package sim

import (
	"testing"

	"dnastore/internal/edit"
	"dnastore/internal/xrand"
)

func TestTrainRNNLossDecreases(t *testing.T) {
	if testing.Short() {
		t.Skip("RNN training in -short mode")
	}
	ref := NewReferenceWetlab()
	strands := randStrands(61, 40, 30)
	pairs := GeneratePairs(62, ref, strands, 2)
	_, losses := TrainRNN(pairs, RNNConfig{Hidden: 12, Embed: 6, Epochs: 3, Seed: 63})
	if len(losses) != 3 {
		t.Fatalf("expected 3 epoch losses, got %d", len(losses))
	}
	if losses[2] >= losses[0] {
		t.Fatalf("loss did not decrease: %v", losses)
	}
}

func TestRNNTransmitProducesPlausibleReads(t *testing.T) {
	if testing.Short() {
		t.Skip("RNN training in -short mode")
	}
	// Train on a light channel and check that generated reads stay near the
	// clean strand (the model learned mostly-copy behaviour).
	ch := CalibratedIID(0.02)
	strands := randStrands(64, 60, 24)
	pairs := GeneratePairs(65, ch, strands, 3)
	model, _ := TrainRNN(pairs, RNNConfig{Hidden: 20, Embed: 8, Epochs: 14, Seed: 66})
	rng := xrand.New(67)
	closeEnough := 0
	const trials = 20
	for i := 0; i < trials; i++ {
		s := strands[i]
		read := model.Transmit(rng, s)
		if len(read) == 0 {
			continue
		}
		if edit.Levenshtein(read, s) <= len(s)/2 {
			closeEnough++
		}
	}
	if closeEnough < trials*6/10 {
		t.Fatalf("only %d/%d generated reads within half-length edit distance", closeEnough, trials)
	}
}

func TestRNNTransmitEmptyStrand(t *testing.T) {
	model := &RNNSimulator{}
	if got := model.Transmit(xrand.New(1), nil); got != nil {
		t.Fatal("empty strand should give nil read")
	}
	_ = model.Name()
}

func TestRNNSamplesDistinctReads(t *testing.T) {
	if testing.Short() {
		t.Skip("RNN training in -short mode")
	}
	ch := CalibratedIID(0.1)
	strands := randStrands(68, 30, 20)
	pairs := GeneratePairs(69, ch, strands, 2)
	model, _ := TrainRNN(pairs, RNNConfig{Hidden: 12, Embed: 6, Epochs: 2, Seed: 70})
	rng := xrand.New(71)
	s := strands[0]
	first := model.Transmit(rng, s)
	distinct := false
	for i := 0; i < 10 && !distinct; i++ {
		if !model.Transmit(rng, s).Equal(first) {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("sampling produced 11 identical reads; simulator is not stochastic")
	}
	var _ Channel = model // must satisfy the Channel interface
}
