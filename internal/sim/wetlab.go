package sim

import (
	"math"

	"dnastore/internal/dna"
	"dnastore/internal/xrand"
)

// ReferenceWetlab is this reproduction's stand-in for real sequenced data
// (the paper evaluates against 270K Nanopore reads; see DESIGN.md for the
// substitution rationale). It deliberately violates every simplifying
// assumption of the naive models:
//
//   - error rates depend on the position within the strand (a ramp that
//     worsens towards the 3' end, as sequencing quality degrades);
//   - every read has its own quality factor (log-normal), so errors are
//     overdispersed across reads;
//   - deletions and insertions arrive in bursts with geometric lengths;
//   - substitutions are nucleotide-conditioned and transition-biased;
//   - inserted bases are often stutters (copies of the previous base).
//
// Experiments treat ReferenceWetlab output as ground-truth "real" data:
// data-driven simulators may train on its paired reads but never inspect
// its parameters.
type ReferenceWetlab struct {
	// BaseRate scales the whole channel; 1.0 gives ≈6–7% per-base edits,
	// in the range of Nanopore sequencing.
	BaseRate float64
	// QualitySigma is the per-read log-normal quality dispersion.
	QualitySigma float64
}

// NewReferenceWetlab returns the reference channel at its default severity.
func NewReferenceWetlab() ReferenceWetlab {
	return ReferenceWetlab{BaseRate: 1.0, QualitySigma: 0.85}
}

// Name implements Channel.
func (c ReferenceWetlab) Name() string { return "reference-wetlab" }

// Transmit implements Channel.
func (c ReferenceWetlab) Transmit(rng *xrand.RNG, strand dna.Seq) dna.Seq {
	if len(strand) == 0 {
		return nil
	}
	// Per-read quality factor: most reads are clean-ish, a tail is awful.
	quality := math.Exp(c.QualitySigma * rng.NormFloat64())
	scale := c.BaseRate * quality

	// Nucleotide-conditioned base rates (A/T indel-prone).
	pDel := [4]float64{0.014, 0.008, 0.008, 0.014}
	pSub := [4]float64{0.011, 0.013, 0.013, 0.011}
	pIns := [4]float64{0.009, 0.006, 0.006, 0.009}
	// Transition-biased substitution targets.
	var subTo [4][4]float64
	subTo[dna.A] = [4]float64{0, 0.15, 0.70, 0.15}
	subTo[dna.C] = [4]float64{0.15, 0, 0.15, 0.70}
	subTo[dna.G] = [4]float64{0.70, 0.15, 0, 0.15}
	subTo[dna.T] = [4]float64{0.15, 0.70, 0.15, 0}

	n := float64(len(strand))
	out := make(dna.Seq, 0, len(strand)+8)
	for i := 0; i < len(strand); i++ {
		b := strand[i]
		// Position ramp: the tail of the strand is ~3× noisier than the head.
		ramp := 0.55 + 1.65*math.Pow(float64(i)/n, 1.6)
		f := scale * ramp

		// Pre-insertion bursts with stutter bias.
		if rng.Bool(pIns[b] * f) {
			burst := rng.Geometric(0.5)
			for k := 0; k < burst; k++ {
				if len(out) > 0 && rng.Bool(0.5) {
					out = append(out, out[len(out)-1]) // stutter
				} else {
					out = append(out, dna.Base(rng.Intn(4)))
				}
			}
		}
		u := rng.Float64()
		switch {
		case u < pDel[b]*f:
			// Burst deletion: remove this and possibly following bases.
			burst := rng.Geometric(0.5)
			i += burst - 1
		case u < (pDel[b]+pSub[b])*f:
			out = append(out, sampleSub(rng, subTo[b], b))
		default:
			out = append(out, b)
		}
	}
	return out
}
