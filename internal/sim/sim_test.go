package sim

import (
	"math"
	"testing"

	"dnastore/internal/dna"
	"dnastore/internal/edit"
	"dnastore/internal/xrand"
)

func randStrands(seed uint64, n, length int) []dna.Seq {
	rng := xrand.New(seed)
	out := make([]dna.Seq, n)
	for i := range out {
		out[i] = dna.Random(rng, length)
	}
	return out
}

func TestIIDZeroRatesIdentity(t *testing.T) {
	ch := NewIIDChannel(0, 0, 0)
	rng := xrand.New(1)
	s := dna.Random(rng, 100)
	if got := ch.Transmit(rng, s); !got.Equal(s) {
		t.Fatal("zero-rate channel mutated the strand")
	}
}

func TestIIDErrorRateMatchesConfiguration(t *testing.T) {
	ch := CalibratedIID(0.06)
	if math.Abs(ch.TotalRate()-0.06) > 1e-12 {
		t.Fatalf("TotalRate = %v", ch.TotalRate())
	}
	pairs := GeneratePairs(2, ch, randStrands(3, 200, 110), 3)
	rate := MeasureErrorRate(pairs)
	if rate < 0.045 || rate > 0.075 {
		t.Fatalf("measured rate %v for configured 0.06", rate)
	}
}

func TestIIDDeletionsShortenInsertionsLengthen(t *testing.T) {
	rng := xrand.New(4)
	s := dna.Random(rng, 500)
	del := IIDChannel{PDel: 0.2}
	sumLen := 0
	for i := 0; i < 50; i++ {
		sumLen += len(del.Transmit(rng, s))
	}
	if avg := float64(sumLen) / 50; avg > 430 || avg < 370 {
		t.Fatalf("deletion-only channel average length %v, want ≈400", avg)
	}
	ins := IIDChannel{PIns: 0.2}
	sumLen = 0
	for i := 0; i < 50; i++ {
		sumLen += len(ins.Transmit(rng, s))
	}
	if avg := float64(sumLen) / 50; avg < 570 || avg > 630 {
		t.Fatalf("insertion-only channel average length %v, want ≈600", avg)
	}
}

func TestIIDSubstitutionOnlyPreservesLength(t *testing.T) {
	rng := xrand.New(5)
	s := dna.Random(rng, 300)
	ch := IIDChannel{PSub: 0.3}
	for i := 0; i < 20; i++ {
		got := ch.Transmit(rng, s)
		if len(got) != len(s) {
			t.Fatal("substitution-only channel changed length")
		}
		if dna.Hamming(got, s) == 0 {
			t.Fatal("0.3 substitution rate produced an identical strand")
		}
	}
}

func TestSOLQCRateBallpark(t *testing.T) {
	ch := DefaultSOLQC(0.06)
	pairs := GeneratePairs(6, ch, randStrands(7, 200, 110), 3)
	rate := MeasureErrorRate(pairs)
	if rate < 0.035 || rate > 0.09 {
		t.Fatalf("measured rate %v for nominal 0.06", rate)
	}
}

func TestSOLQCSubstitutionBias(t *testing.T) {
	// A must substitute to G far more often than to C or T.
	ch := DefaultSOLQC(0.3)
	rng := xrand.New(8)
	counts := map[dna.Base]int{}
	s := make(dna.Seq, 200)
	for i := range s {
		s[i] = dna.A
	}
	for trial := 0; trial < 200; trial++ {
		got := ch.Transmit(rng, s)
		// Count substituted bases among equal-length prefix positions; use
		// alignment to be robust to the channel's indels.
		ops, _ := edit.Align(s, got)
		j := 0
		for _, op := range ops {
			switch op {
			case edit.Match:
				j++
			case edit.Sub:
				counts[got[j]]++
				j++
			case edit.Ins:
				j++
			}
		}
	}
	if counts[dna.G] <= counts[dna.C] || counts[dna.G] <= counts[dna.T] {
		t.Fatalf("transition bias not observed: %v", counts)
	}
}

func TestReferenceWetlabPositionRamp(t *testing.T) {
	ch := NewReferenceWetlab()
	strands := randStrands(11, 300, 120)
	pairs := GeneratePairs(12, ch, strands, 2)
	// Tabulate per-position (first vs last third) error events via alignment.
	var headErr, tailErr, headOpp, tailOpp float64
	for _, pr := range pairs {
		ops, _ := edit.Align(pr.Clean, pr.Noisy)
		i := 0
		for _, op := range ops {
			isErr := op != edit.Match
			consumesClean := op == edit.Match || op == edit.Sub || op == edit.Del
			pos := i
			if pos >= len(pr.Clean) {
				pos = len(pr.Clean) - 1
			}
			third := pos * 3 / len(pr.Clean)
			if third == 0 {
				headOpp++
				if isErr {
					headErr++
				}
			} else if third == 2 {
				tailOpp++
				if isErr {
					tailErr++
				}
			}
			if consumesClean {
				i++
			}
		}
	}
	headRate := headErr / headOpp
	tailRate := tailErr / tailOpp
	if tailRate < headRate*1.5 {
		t.Fatalf("no position ramp: head %v tail %v", headRate, tailRate)
	}
}

func TestReferenceWetlabOverdispersion(t *testing.T) {
	ch := NewReferenceWetlab()
	strands := randStrands(13, 400, 110)
	pairs := GeneratePairs(14, ch, strands, 1)
	var rates []float64
	for _, p := range pairs {
		rates = append(rates, float64(edit.Levenshtein(p.Clean, p.Noisy))/float64(len(p.Clean)))
	}
	mean, variance := meanVar(rates)
	binomial := mean / 110
	if variance < 2*binomial {
		t.Fatalf("per-read variance %v not overdispersed vs binomial %v", variance, binomial)
	}
}

func meanVar(xs []float64) (float64, float64) {
	var m float64
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	var v float64
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return m, v / float64(len(xs)-1)
}

func TestReferenceWetlabEmptyStrand(t *testing.T) {
	ch := NewReferenceWetlab()
	if got := ch.Transmit(xrand.New(1), nil); len(got) != 0 {
		t.Fatal("empty strand should yield empty read")
	}
}

func TestSimulatePoolCoverageAndOrigins(t *testing.T) {
	strands := randStrands(20, 30, 80)
	reads := SimulatePool(strands, Options{
		Channel:  CalibratedIID(0.03),
		Coverage: FixedCoverage(5),
		Seed:     21,
	})
	if len(reads) != 150 {
		t.Fatalf("got %d reads, want 150", len(reads))
	}
	perOrigin := map[int]int{}
	for _, r := range reads {
		perOrigin[r.Origin]++
	}
	for i := 0; i < 30; i++ {
		if perOrigin[i] != 5 {
			t.Fatalf("origin %d has %d reads", i, perOrigin[i])
		}
	}
}

func TestSimulatePoolDeterministicAcrossRuns(t *testing.T) {
	strands := randStrands(22, 40, 90)
	opts := Options{Channel: NewReferenceWetlab(), Coverage: PoissonCoverage(8), Seed: 23}
	a := SimulatePool(strands, opts)
	b := SimulatePool(strands, opts)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Origin != b[i].Origin || !a[i].Seq.Equal(b[i].Seq) {
			t.Fatalf("read %d differs between identical runs", i)
		}
	}
}

func TestSimulatePoolDropout(t *testing.T) {
	strands := randStrands(24, 200, 60)
	reads := SimulatePool(strands, Options{
		Channel:  NewIIDChannel(0, 0, 0),
		Coverage: FixedCoverage(1),
		Dropout:  0.5,
		Seed:     25,
	})
	if len(reads) < 60 || len(reads) > 140 {
		t.Fatalf("dropout 0.5 kept %d/200 strands", len(reads))
	}
}

func TestSimulatePoolShufflesByDefault(t *testing.T) {
	strands := randStrands(26, 50, 60)
	reads := SimulatePool(strands, Options{Channel: NewIIDChannel(0, 0, 0), Coverage: FixedCoverage(2), Seed: 27})
	ordered := true
	for i := 1; i < len(reads); i++ {
		if reads[i].Origin < reads[i-1].Origin {
			ordered = false
			break
		}
	}
	if ordered {
		t.Fatal("reads came back in origin order; expected shuffle")
	}
	kept := SimulatePool(strands, Options{Channel: NewIIDChannel(0, 0, 0), Coverage: FixedCoverage(2), Seed: 27, KeepOrder: true})
	for i := 1; i < len(kept); i++ {
		if kept[i].Origin < kept[i-1].Origin {
			t.Fatal("KeepOrder violated")
		}
	}
}

func TestSkewedCoverageIsSkewed(t *testing.T) {
	rng := xrand.New(31)
	model := SkewedCoverage{Mean: 10, Sigma: 0.6}
	var samples []float64
	for i := 0; i < 5000; i++ {
		samples = append(samples, float64(model.Copies(rng)))
	}
	mean, variance := meanVar(samples)
	if math.Abs(mean-10) > 1 {
		t.Fatalf("skewed coverage mean %v", mean)
	}
	if variance < 15 { // Poisson alone would give variance ≈ 10
		t.Fatalf("variance %v not overdispersed", variance)
	}
}

func TestSequencesStripsOrigins(t *testing.T) {
	reads := []Read{{Seq: dna.MustFromString("ACGT"), Origin: 3}}
	seqs := Sequences(reads)
	if len(seqs) != 1 || !seqs[0].Equal(reads[0].Seq) {
		t.Fatal("Sequences mismatch")
	}
}

func TestMeasureErrorRateEmpty(t *testing.T) {
	if MeasureErrorRate(nil) != 0 {
		t.Fatal("empty dataset should measure 0")
	}
}

func TestTrainProfileLearnsAggregateRate(t *testing.T) {
	ref := NewReferenceWetlab()
	strands := randStrands(41, 400, 110)
	train := GeneratePairs(42, ref, strands, 2)
	model := TrainProfile(train, 24)

	// Generate from the model and compare aggregate error rates.
	gen := GeneratePairs(43, model, strands[:200], 2)
	realRate := MeasureErrorRate(train)
	modelRate := MeasureErrorRate(gen)
	if modelRate < realRate*0.7 || modelRate > realRate*1.35 {
		t.Fatalf("model rate %v vs real rate %v", modelRate, realRate)
	}
}

func TestTrainProfileLearnsPositionRamp(t *testing.T) {
	ref := NewReferenceWetlab()
	strands := randStrands(44, 400, 110)
	train := GeneratePairs(45, ref, strands, 2)
	model := TrainProfile(train, 24)

	// The learned model must reproduce head-vs-tail asymmetry.
	gen := GeneratePairs(46, model, strands[:200], 2)
	head, tail := headTailRates(gen)
	if tail < head*1.3 {
		t.Fatalf("learned model lost the position ramp: head %v tail %v", head, tail)
	}
}

func headTailRates(pairs []Pair) (float64, float64) {
	var headErr, tailErr, headOpp, tailOpp float64
	for _, pr := range pairs {
		ops, _ := edit.Align(pr.Clean, pr.Noisy)
		i := 0
		for _, op := range ops {
			pos := i
			if pos >= len(pr.Clean) {
				pos = len(pr.Clean) - 1
			}
			third := pos * 3 / len(pr.Clean)
			isErr := op != edit.Match
			if third == 0 {
				headOpp++
				if isErr {
					headErr++
				}
			} else if third == 2 {
				tailOpp++
				if isErr {
					tailErr++
				}
			}
			if op == edit.Match || op == edit.Sub || op == edit.Del {
				i++
			}
		}
	}
	return headErr / headOpp, tailErr / tailOpp
}

func TestTrainProfileCloserToRealThanIID(t *testing.T) {
	// The central claim of §V-B at channel level: the data-driven model's
	// positional profile matches the reference channel better than an IID
	// channel calibrated to the same aggregate rate.
	ref := NewReferenceWetlab()
	strands := randStrands(47, 400, 110)
	train := GeneratePairs(48, ref, strands, 2)
	model := TrainProfile(train, 24)
	iid := CalibratedIID(MeasureErrorRate(train))

	eval := strands[:200]
	realHead, realTail := headTailRates(GeneratePairs(49, ref, eval, 2))
	modHead, modTail := headTailRates(GeneratePairs(50, model, eval, 2))
	iidHead, iidTail := headTailRates(GeneratePairs(51, iid, eval, 2))

	modDev := math.Abs(modHead-realHead) + math.Abs(modTail-realTail)
	iidDev := math.Abs(iidHead-realHead) + math.Abs(iidTail-realTail)
	if modDev >= iidDev {
		t.Fatalf("learned profile (dev %v) no better than IID (dev %v)", modDev, iidDev)
	}
}

func TestTrainProfileEmptyAndDegenerate(t *testing.T) {
	m := TrainProfile(nil, 10)
	rng := xrand.New(1)
	s := dna.Random(rng, 50)
	if got := m.Transmit(rng, s); !got.Equal(s) {
		t.Fatal("untrained model should be the identity channel")
	}
	// Clean-only pairs: model should inject (almost) no errors.
	pairs := []Pair{{Clean: s, Noisy: s.Clone()}}
	m2 := TrainProfile(pairs, 10)
	errs := 0
	for i := 0; i < 50; i++ {
		if !m2.Transmit(rng, s).Equal(s) {
			errs++
		}
	}
	if errs > 25 {
		t.Fatalf("noise-free training produced errors in %d/50 reads", errs)
	}
}

func TestProfileTransmitEmpty(t *testing.T) {
	m := TrainProfile(nil, 5)
	if got := m.Transmit(xrand.New(1), nil); len(got) != 0 {
		t.Fatal("empty strand")
	}
}

func BenchmarkIIDTransmit(b *testing.B) {
	ch := CalibratedIID(0.06)
	rng := xrand.New(1)
	s := dna.Random(rng, 150)
	b.SetBytes(150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Transmit(rng, s)
	}
}

func BenchmarkReferenceWetlabTransmit(b *testing.B) {
	ch := NewReferenceWetlab()
	rng := xrand.New(1)
	s := dna.Random(rng, 150)
	b.SetBytes(150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Transmit(rng, s)
	}
}

func BenchmarkLearnedProfileTransmit(b *testing.B) {
	strands := randStrands(1, 100, 110)
	model := TrainProfile(GeneratePairs(2, NewReferenceWetlab(), strands, 2), 24)
	rng := xrand.New(3)
	s := dna.Random(rng, 150)
	b.SetBytes(150)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Transmit(rng, s)
	}
}
