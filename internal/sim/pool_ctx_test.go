package sim

import (
	"context"
	"errors"
	"testing"

	"dnastore/internal/dna"
	"dnastore/internal/xrand"
)

func ctxTestStrands(n int) []dna.Seq {
	out := make([]dna.Seq, n)
	for i := range out {
		out[i] = dna.MustFromString("ACGTACGTACGTACGTACGT")
	}
	return out
}

func TestSimulatePoolContextNoChannel(t *testing.T) {
	if _, err := SimulatePoolContext(context.Background(), ctxTestStrands(2), Options{}); !errors.Is(err, ErrNoChannel) {
		t.Fatalf("err = %v, want ErrNoChannel", err)
	}
}

func TestSimulatePoolContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := Options{Channel: CalibratedIID(0.01), Coverage: FixedCoverage(5), Seed: 9}
	if _, err := SimulatePoolContext(ctx, ctxTestStrands(64), opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// strandBombChannel panics whenever it transmits the victim strand.
type strandBombChannel struct {
	inner  Channel
	victim dna.Seq
}

func (c strandBombChannel) Name() string { return "strand-bomb" }

func (c strandBombChannel) Transmit(rng *xrand.RNG, strand dna.Seq) dna.Seq {
	if strand.Equal(c.victim) {
		panic("bomb")
	}
	return c.inner.Transmit(rng, strand)
}

func TestPanickingChannelSalvagedAsDropout(t *testing.T) {
	strands := ctxTestStrands(8)
	strands[3] = dna.MustFromString("TTTTTTTTTTTTTTTTTTTT")
	ch := strandBombChannel{inner: CalibratedIID(0), victim: strands[3]}
	reads, err := SimulatePoolContext(context.Background(), strands, Options{
		Channel: ch, Coverage: FixedCoverage(4), Seed: 11, KeepOrder: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 7*4 {
		t.Fatalf("got %d reads, want %d (victim strand dropped, others intact)", len(reads), 7*4)
	}
	for _, r := range reads {
		if r.Origin == 3 {
			t.Fatal("reads of the panicking strand leaked out")
		}
	}
}
