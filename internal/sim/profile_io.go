package sim

import (
	"encoding/json"
	"fmt"
)

// profileJSON is the serialized form of a LearnedProfile. Training on a
// large paired dataset takes time; serializing the fitted model lets a
// toolkit user train once and ship the simulator with their experiments.
type profileJSON struct {
	Version      int           `json:"version"`
	Buckets      int           `json:"buckets"`
	PDel         [][4]float64  `json:"p_del"`
	PSub         [][4]float64  `json:"p_sub"`
	PIns         [][4]float64  `json:"p_ins"`
	DelGeom      float64       `json:"del_geom"`
	InsGeom      float64       `json:"ins_geom"`
	SubTo        [4][4]float64 `json:"sub_to"`
	Stutter      float64       `json:"stutter"`
	QualitySigma float64       `json:"quality_sigma"`
}

const profileVersion = 1

// MarshalJSON serializes the fitted model.
func (p *LearnedProfile) MarshalJSON() ([]byte, error) {
	return json.Marshal(profileJSON{
		Version:      profileVersion,
		Buckets:      p.buckets,
		PDel:         p.pDel,
		PSub:         p.pSub,
		PIns:         p.pIns,
		DelGeom:      p.delGeom,
		InsGeom:      p.insGeom,
		SubTo:        p.subTo,
		Stutter:      p.stutter,
		QualitySigma: p.qualitySigma,
	})
}

// UnmarshalJSON restores a model serialized by MarshalJSON.
func (p *LearnedProfile) UnmarshalJSON(data []byte) error {
	var raw profileJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	if raw.Version != profileVersion {
		return fmt.Errorf("sim: unsupported profile version %d", raw.Version)
	}
	if raw.Buckets < 0 ||
		len(raw.PDel) != raw.Buckets || len(raw.PSub) != raw.Buckets || len(raw.PIns) != raw.Buckets {
		return fmt.Errorf("sim: corrupt profile: %d buckets with %d/%d/%d rate rows",
			raw.Buckets, len(raw.PDel), len(raw.PSub), len(raw.PIns))
	}
	p.buckets = raw.Buckets
	p.pDel = raw.PDel
	p.pSub = raw.PSub
	p.pIns = raw.PIns
	p.delGeom = raw.DelGeom
	p.insGeom = raw.InsGeom
	p.subTo = raw.SubTo
	p.stutter = raw.Stutter
	p.qualitySigma = raw.QualitySigma
	return nil
}
