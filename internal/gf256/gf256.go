// Package gf256 implements arithmetic over the finite field GF(2^8) with the
// primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the conventional
// field for byte-oriented Reed–Solomon codes. It is the substrate for the
// toolkit's outer error-correcting code (§IV of the paper).
package gf256

// Order is the number of field elements.
const Order = 256

// poly is the primitive polynomial 0x11d reduced to 8 bits.
const poly = 0x1d

var (
	expTable [510]byte // exp[i] = α^i, doubled so Mul can skip a mod
	logTable [256]byte // log[x] = i such that α^i = x; log[0] unused
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		expTable[i] = x
		expTable[i+255] = x
		logTable[x] = byte(i)
		carry := x&0x80 != 0
		x <<= 1
		if carry {
			x ^= poly
		}
	}
}

// Add returns a+b in GF(2^8). Addition and subtraction are both XOR.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a-b in GF(2^8) (identical to Add).
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// Div returns a/b in GF(2^8). It panics if b is zero.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf256: division by zero")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf256: inverse of zero")
	}
	return expTable[255-int(logTable[a])]
}

// Exp returns α^n for the field generator α (n may be any integer).
func Exp(n int) byte {
	n %= 255
	if n < 0 {
		n += 255
	}
	return expTable[n]
}

// Log returns the discrete log of a (base α). It panics if a is zero.
func Log(a byte) int {
	if a == 0 {
		panic("gf256: log of zero")
	}
	return int(logTable[a])
}

// Poly is a polynomial over GF(2^8), coefficients in ascending-degree order:
// Poly{c0, c1, c2} represents c0 + c1·x + c2·x².
type Poly []byte

// Trim removes trailing zero coefficients so Degree is meaningful.
func (p Poly) Trim() Poly {
	n := len(p)
	for n > 0 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}

// Degree returns the degree of p, or -1 for the zero polynomial.
func (p Poly) Degree() int { return len(p.Trim()) - 1 }

// Eval evaluates the polynomial at x using Horner's rule.
func (p Poly) Eval(x byte) byte {
	var y byte
	for i := len(p) - 1; i >= 0; i-- {
		y = Mul(y, x) ^ p[i]
	}
	return y
}

// AddPoly returns a+b.
func AddPoly(a, b Poly) Poly {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := make(Poly, n)
	copy(out, a)
	for i := range b {
		out[i] ^= b[i]
	}
	return out
}

// MulPoly returns a·b.
func MulPoly(a, b Poly) Poly {
	if len(a) == 0 || len(b) == 0 {
		return Poly{}
	}
	out := make(Poly, len(a)+len(b)-1)
	for i, ai := range a {
		if ai == 0 {
			continue
		}
		for j, bj := range b {
			out[i+j] ^= Mul(ai, bj)
		}
	}
	return out
}

// Scale returns p·c.
func (p Poly) Scale(c byte) Poly {
	out := make(Poly, len(p))
	for i, v := range p {
		out[i] = Mul(v, c)
	}
	return out
}

// Deriv returns the formal derivative of p. In characteristic 2 the even
// coefficients vanish: (Σ cᵢ xⁱ)' = Σ_{i odd} cᵢ x^{i-1}.
func (p Poly) Deriv() Poly {
	if len(p) <= 1 {
		return Poly{}
	}
	out := make(Poly, len(p)-1)
	for i := 1; i < len(p); i += 2 {
		out[i-1] = p[i]
	}
	return out.Trim()
}
