package gf256

import (
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	if Add(0x53, 0xCA) != 0x53^0xCA {
		t.Fatal("Add is not XOR")
	}
	if Sub(0x53, 0xCA) != Add(0x53, 0xCA) {
		t.Fatal("Sub != Add in characteristic 2")
	}
}

func TestMulIdentityAndZero(t *testing.T) {
	for a := 0; a < 256; a++ {
		if Mul(byte(a), 1) != byte(a) {
			t.Fatalf("a*1 != a for %d", a)
		}
		if Mul(byte(a), 0) != 0 {
			t.Fatalf("a*0 != 0 for %d", a)
		}
	}
}

func TestMulCommutativeAssociative(t *testing.T) {
	f := func(a, b, c byte) bool {
		return Mul(a, b) == Mul(b, a) && Mul(a, Mul(b, c)) == Mul(Mul(a, b), c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistributive(t *testing.T) {
	f := func(a, b, c byte) bool {
		return Mul(a, b^c) == Mul(a, b)^Mul(a, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKnownProduct(t *testing.T) {
	// For polynomial 0x11d: 2·0x80 = 0x100 mod 0x11d = 0x1d.
	if got := Mul(2, 0x80); got != 0x1d {
		t.Fatalf("2*0x80 = %#x, want 0x1d", got)
	}
	// α = 2 is the generator, so Mul(2, x) must equal Exp(Log(x)+1).
	for x := 1; x < 256; x++ {
		if Mul(2, byte(x)) != Exp(Log(byte(x))+1) {
			t.Fatalf("doubling mismatch at %d", x)
		}
	}
}

func TestInverses(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if Mul(byte(a), inv) != 1 {
			t.Fatalf("a*Inv(a) != 1 for %d", a)
		}
		if Div(1, byte(a)) != inv {
			t.Fatalf("Div(1,a) != Inv(a) for %d", a)
		}
	}
}

func TestDivInverseOfMul(t *testing.T) {
	f := func(a, b byte) bool {
		if b == 0 {
			return true
		}
		return Div(Mul(a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Div(5, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Inv(0)
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Exp(Log(byte(a))) != byte(a) {
			t.Fatalf("Exp(Log(%d)) mismatch", a)
		}
	}
	for n := -300; n < 600; n++ {
		if Exp(n) == 0 {
			t.Fatalf("Exp(%d) = 0", n)
		}
		if Exp(n) != Exp(n+255) {
			t.Fatalf("Exp not periodic at %d", n)
		}
	}
}

func TestGeneratorOrder(t *testing.T) {
	// α must generate all 255 nonzero elements.
	seen := map[byte]bool{}
	for i := 0; i < 255; i++ {
		seen[Exp(i)] = true
	}
	if len(seen) != 255 {
		t.Fatalf("generator produced %d distinct elements", len(seen))
	}
}

func TestPolyEval(t *testing.T) {
	// p(x) = 3 + 2x + x²  at x=2: 3 ^ Mul(2,2) ^ Mul(1,4) = 3^4^4 = 3
	p := Poly{3, 2, 1}
	want := byte(3) ^ Mul(2, 2) ^ Mul(1, Mul(2, 2))
	if got := p.Eval(2); got != want {
		t.Fatalf("Eval = %#x want %#x", got, want)
	}
}

func TestPolyEvalZeroPoly(t *testing.T) {
	if (Poly{}).Eval(7) != 0 {
		t.Fatal("zero poly should evaluate to 0")
	}
}

func TestPolyDegreeAndTrim(t *testing.T) {
	if (Poly{0, 0}).Degree() != -1 {
		t.Fatal("zero poly degree")
	}
	if (Poly{1, 2, 0, 0}).Degree() != 1 {
		t.Fatal("trailing zeros not trimmed")
	}
}

func TestMulPolyDegrees(t *testing.T) {
	a := Poly{1, 1}    // 1+x
	b := Poly{1, 0, 1} // 1+x²
	c := MulPoly(a, b) // (1+x)(1+x²) = 1+x+x²+x³
	want := Poly{1, 1, 1, 1}
	if len(c) != len(want) {
		t.Fatalf("len = %d", len(c))
	}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("coef %d = %d want %d", i, c[i], want[i])
		}
	}
}

func TestMulPolyEvalHomomorphism(t *testing.T) {
	f := func(a, b []byte, x byte) bool {
		if len(a) > 10 {
			a = a[:10]
		}
		if len(b) > 10 {
			b = b[:10]
		}
		pa, pb := Poly(a), Poly(b)
		return MulPoly(pa, pb).Eval(x) == Mul(pa.Eval(x), pb.Eval(x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddPolyEvalHomomorphism(t *testing.T) {
	f := func(a, b []byte, x byte) bool {
		pa, pb := Poly(a), Poly(b)
		return AddPoly(pa, pb).Eval(x) == pa.Eval(x)^pb.Eval(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScale(t *testing.T) {
	p := Poly{1, 2, 3}
	s := p.Scale(5)
	for i := range p {
		if s[i] != Mul(p[i], 5) {
			t.Fatalf("scale mismatch at %d", i)
		}
	}
}

func TestDeriv(t *testing.T) {
	// p = c0 + c1 x + c2 x² + c3 x³ → p' = c1 + c3 x² (char 2)
	p := Poly{9, 7, 5, 3}
	d := p.Deriv()
	want := Poly{7, 0, 3}
	if len(d) != len(want) {
		t.Fatalf("deriv len = %d want %d (%v)", len(d), len(want), d)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("deriv coef %d = %d want %d", i, d[i], want[i])
		}
	}
	if len((Poly{5}).Deriv()) != 0 {
		t.Fatal("constant derivative should be zero poly")
	}
}
