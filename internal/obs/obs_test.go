package obs

import (
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestStageTimeCountsCallsAndBusy(t *testing.T) {
	r := NewRegistry()
	st := r.Stage("simulate")
	for i := 0; i < 3; i++ {
		err := st.Time(func() error {
			time.Sleep(2 * time.Millisecond)
			return nil
		})
		if err != nil {
			t.Fatalf("Time returned %v", err)
		}
	}
	wantErr := errors.New("boom")
	if err := st.Time(func() error { return wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("Time swallowed error: %v", err)
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Stage != "simulate" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].Calls != 4 {
		t.Fatalf("calls = %d, want 4", snap[0].Calls)
	}
	if snap[0].BusyNanos < (6 * time.Millisecond).Nanoseconds() {
		t.Fatalf("busy = %d ns, want >= 6ms", snap[0].BusyNanos)
	}
	if snap[0].BusySeconds != time.Duration(snap[0].BusyNanos).Seconds() {
		t.Fatal("BusySeconds inconsistent with BusyNanos")
	}
}

func TestStageTimeRecordsBusyOnPanic(t *testing.T) {
	r := NewRegistry()
	st := r.Stage("cluster")
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate through Time")
			}
		}()
		_ = st.Time(func() error {
			time.Sleep(time.Millisecond)
			panic("injected")
		})
	}()
	snap := r.Snapshot()[0]
	if snap.Calls != 1 {
		t.Fatalf("calls = %d, want 1", snap.Calls)
	}
	if snap.BusyNanos <= 0 {
		t.Fatal("busy time not recorded on panic")
	}
	// Panic accounting belongs to the caller's boundary, not Time.
	if snap.Panics != 0 {
		t.Fatalf("panics = %d, want 0 (caller owns AddPanics)", snap.Panics)
	}
}

func TestHooksFireInOrder(t *testing.T) {
	r := NewRegistry()
	var events []Event
	r.OnEvent(func(ev Event) { events = append(events, ev) })
	wantErr := errors.New("stage failed")
	_ = r.Stage("decode").Time(func() error { return wantErr })
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0].Kind != StageBegin || events[0].Stage != "decode" || events[0].Err != nil {
		t.Fatalf("begin event = %+v", events[0])
	}
	if events[1].Kind != StageEnd || !errors.Is(events[1].Err, wantErr) {
		t.Fatalf("end event = %+v", events[1])
	}
}

func TestHookPanicPropagatesBeforeWork(t *testing.T) {
	r := NewRegistry()
	r.OnEvent(func(ev Event) {
		if ev.Kind == StageBegin {
			panic("hook bomb")
		}
	})
	ran := false
	func() {
		defer func() { _ = recover() }()
		_ = r.Stage("encode").Time(func() error { ran = true; return nil })
	}()
	if ran {
		t.Fatal("work function ran despite StageBegin hook panic")
	}
}

func TestInheritHooks(t *testing.T) {
	sink := NewRegistry()
	var fired int
	sink.OnEvent(func(Event) { fired++ })
	run := NewRegistry()
	run.InheritHooks(sink)
	_ = run.Stage("encode").Time(func() error { return nil })
	if fired != 2 {
		t.Fatalf("inherited hook fired %d times, want 2", fired)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	if r.Stage("x") != nil {
		t.Fatal("nil registry returned a stage")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry returned a snapshot")
	}
	r.OnEvent(func(Event) {})
	r.InheritHooks(NewRegistry())
	r.Publish(NewRegistry())
	NewRegistry().Publish(r)

	var st *Stage
	ran := false
	if err := st.Time(func() error { ran = true; return nil }); err != nil || !ran {
		t.Fatal("nil stage must still run fn")
	}
	st.AddIn(1)
	st.AddOut(1)
	st.AddRetries(1)
	st.AddSpills(1)
	st.AddPanics(1)
	st.AddBusy(time.Second)
	st.AddCalls(1)
	if st.Busy() != 0 || st.AllocsPerOp() != 0 || st.Name() != "" {
		t.Fatal("nil stage getters must be zero")
	}
	sampled := false
	st.SampleAllocs(3, func() { sampled = true })
	if !sampled {
		t.Fatal("nil stage SampleAllocs must still run fn")
	}
}

func TestCountersAndSnapshotOrder(t *testing.T) {
	r := NewRegistry()
	r.Stage("encode").AddIn(100)
	r.Stage("cluster").AddSpills(7)
	r.Stage("encode").AddOut(42)
	r.Stage("decode").AddRetries(2)
	r.Stage("decode").AddPanics(1)
	snap := r.Snapshot()
	names := []string{snap[0].Stage, snap[1].Stage, snap[2].Stage}
	want := []string{"encode", "cluster", "decode"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("snapshot order %v, want %v (first use)", names, want)
		}
	}
	if snap[0].ItemsIn != 100 || snap[0].ItemsOut != 42 {
		t.Fatalf("encode counters = %+v", snap[0])
	}
	if snap[1].Spills != 7 || snap[2].Retries != 2 || snap[2].Panics != 1 {
		t.Fatalf("counters wrong: %+v", snap)
	}
}

func TestPublishMergesAtomically(t *testing.T) {
	sink := NewRegistry()
	sink.Stage("cluster").AddIn(5)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			run := NewRegistry()
			run.Stage("cluster").AddIn(10)
			run.Stage("cluster").AddBusy(time.Millisecond)
			run.Stage("recon").AddOut(1)
			run.Publish(sink)
		}()
	}
	wg.Wait()
	snap := sink.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("sink has %d stages, want 2", len(snap))
	}
	if snap[0].Stage != "cluster" || snap[0].ItemsIn != 85 {
		t.Fatalf("cluster merge = %+v, want items_in 85", snap[0])
	}
	if snap[0].BusyNanos != (8 * time.Millisecond).Nanoseconds() {
		t.Fatalf("busy merge = %d", snap[0].BusyNanos)
	}
	if snap[1].Stage != "recon" || snap[1].ItemsOut != 8 {
		t.Fatalf("recon merge = %+v", snap[1])
	}
}

func TestSampleAllocs(t *testing.T) {
	r := NewRegistry()
	st := r.Stage("kernel")
	var sink []byte
	st.SampleAllocs(10, func() {
		sink = make([]byte, 64*1024)
	})
	_ = sink
	if got := st.AllocsPerOp(); got < 0.5 {
		t.Fatalf("allocs/op = %v, want >= 0.5", got)
	}
	snap := r.Snapshot()[0]
	if snap.AllocsPerOp != st.AllocsPerOp() {
		t.Fatal("snapshot allocs mismatch")
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Stage("encode").AddIn(3)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"stage", "calls", "busy_ns", "busy_seconds", "items_in", "items_out", "retries", "spills", "panics"} {
		if _, ok := decoded[0][key]; !ok {
			t.Fatalf("snapshot JSON missing %q: %s", key, b)
		}
	}
	if _, ok := decoded[0]["allocs_per_op"]; ok {
		t.Fatal("allocs_per_op must be omitted when unsampled")
	}
}
