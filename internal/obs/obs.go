// Package obs is the observability spine for the pipeline: per-stage
// atomic counters (calls, busy time, items in/out, retries, spills,
// panics, sampled allocations) collected in a Registry, plus pluggable
// event hooks that fire at stage boundaries (chaos injection rides the
// same hooks).
//
// Metric semantics:
//
//   - Busy time is the summed wall time spent inside a stage's work
//     function across all calls; because stages overlap across workers,
//     busy totals can exceed the run's wall time (that ratio is
//     StageTimes.Overlap in core).
//   - ItemsIn/ItemsOut are stage-specific units (bytes into encode,
//     strands out; reads into cluster, clusters out, ...), recorded by the
//     call sites, not inferred.
//   - Counters are monotonic within a registry. Per-run registries are
//     published (atomically merged) into a long-lived sink registry, so a
//     sink accumulates across runs while per-run snapshots stay exact even
//     with concurrent workers.
//   - Every method is nil-receiver safe: a nil *Registry or *Stage records
//     nothing and Time still runs the work function, so call sites never
//     branch on whether metrics are wired.
//
// All timestamps feed telemetry only — they never influence decoded
// bytes, so the determinism guarantee is untouched.
package obs

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind identifies where in a stage's lifecycle a hook fires.
type EventKind uint8

const (
	// StageBegin fires after the call is counted, before the work
	// function runs. A hook that panics here is attributed to the stage
	// by the caller's panic boundary (core wraps it as ErrStagePanic with
	// the stage name) — which is exactly how chaos.PanicHook injects
	// stage panics.
	StageBegin EventKind = iota + 1
	// StageEnd fires after the work function returns normally (not on
	// panic), with its error attached.
	StageEnd
)

// Event is delivered to hooks at stage boundaries.
type Event struct {
	Stage string
	Kind  EventKind
	Err   error
}

// Hook observes stage events. Hooks run synchronously on the stage's
// goroutine; a panicking hook is indistinguishable from a panicking stage.
type Hook func(Event)

// now returns the wall clock for busy-time telemetry. This package is
// deliberately outside the dnalint determinism scope: every timestamp
// feeds counters, never decoded bytes.
func now() time.Time {
	return time.Now()
}

// Stage holds one pipeline stage's counters. All fields are atomics, so a
// stage may be shared by concurrent workers; obtain stages from a Registry.
type Stage struct {
	reg  *Registry
	name string

	calls     atomic.Int64
	busyNanos atomic.Int64
	itemsIn   atomic.Int64
	itemsOut  atomic.Int64
	retries   atomic.Int64
	spills    atomic.Int64
	panics    atomic.Int64
	// allocsBits holds math.Float64bits of the sampled allocs/op; zero
	// means "not sampled".
	allocsBits atomic.Uint64
}

// Name reports the stage name, or "" on a nil stage.
func (s *Stage) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

func (s *Stage) fire(ev Event) {
	if s == nil || s.reg == nil {
		return
	}
	for _, h := range s.reg.loadHooks() {
		h(ev)
	}
}

// Time runs fn, counting the call and accumulating busy time. StageBegin
// fires before fn, StageEnd (with fn's error) after a normal return. Busy
// time is recorded even if fn panics; the panic propagates to the caller's
// boundary uncounted — the caller owns panic accounting via AddPanics, so
// the same panic is never double-counted. On a nil stage fn still runs.
func (s *Stage) Time(fn func() error) error {
	if s == nil {
		return fn()
	}
	s.calls.Add(1)
	s.fire(Event{Stage: s.name, Kind: StageBegin})
	start := now()
	defer func() { s.busyNanos.Add(now().Sub(start).Nanoseconds()) }()
	err := fn()
	s.fire(Event{Stage: s.name, Kind: StageEnd, Err: err})
	return err
}

// AddIn adds to the stage's items-in counter.
func (s *Stage) AddIn(n int64) {
	if s != nil {
		s.itemsIn.Add(n)
	}
}

// AddOut adds to the stage's items-out counter.
func (s *Stage) AddOut(n int64) {
	if s != nil {
		s.itemsOut.Add(n)
	}
}

// AddRetries adds to the stage's retry counter.
func (s *Stage) AddRetries(n int64) {
	if s != nil {
		s.retries.Add(n)
	}
}

// AddSpills adds to the stage's spill counter (items diverted to an
// overflow path, e.g. demux reads whose volume ID failed to parse).
func (s *Stage) AddSpills(n int64) {
	if s != nil {
		s.spills.Add(n)
	}
}

// AddPanics adds to the stage's contained-panic counter.
func (s *Stage) AddPanics(n int64) {
	if s != nil {
		s.panics.Add(n)
	}
}

// AddBusy adds busy time recorded outside Time (e.g. a pooled stage's
// share attributed to one volume).
func (s *Stage) AddBusy(d time.Duration) {
	if s != nil {
		s.busyNanos.Add(d.Nanoseconds())
	}
}

// AddCalls adds to the call counter for work timed outside Time.
func (s *Stage) AddCalls(n int64) {
	if s != nil {
		s.calls.Add(n)
	}
}

// Busy reports the accumulated busy time.
func (s *Stage) Busy() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.busyNanos.Load())
}

// AllocsPerOp reports the last sampled allocations per operation, or 0 if
// never sampled.
func (s *Stage) AllocsPerOp() float64 {
	if s == nil {
		return 0
	}
	return math.Float64frombits(s.allocsBits.Load())
}

// SampleAllocs runs fn runs+1 times (one warm-up) pinned to a single
// proc and stores the mean heap allocations per run. fn always runs at
// least once, even on a nil stage.
func (s *Stage) SampleAllocs(runs int, fn func()) {
	if runs < 1 {
		runs = 1
	}
	if s == nil {
		fn()
		return
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	fn() // warm caches and pools so steady state is measured
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	perOp := float64(after.Mallocs-before.Mallocs) / float64(runs)
	s.allocsBits.Store(math.Float64bits(perOp))
}

// StageSnapshot is a point-in-time copy of one stage's counters, stable
// for JSON emission (-metrics-json, BENCH files).
type StageSnapshot struct {
	Stage       string  `json:"stage"`
	Calls       int64   `json:"calls"`
	BusyNanos   int64   `json:"busy_ns"`
	BusySeconds float64 `json:"busy_seconds"`
	ItemsIn     int64   `json:"items_in"`
	ItemsOut    int64   `json:"items_out"`
	Retries     int64   `json:"retries"`
	Spills      int64   `json:"spills"`
	Panics      int64   `json:"panics"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

func (s *Stage) snapshot() StageSnapshot {
	busy := s.busyNanos.Load()
	return StageSnapshot{
		Stage:       s.name,
		Calls:       s.calls.Load(),
		BusyNanos:   busy,
		BusySeconds: time.Duration(busy).Seconds(),
		ItemsIn:     s.itemsIn.Load(),
		ItemsOut:    s.itemsOut.Load(),
		Retries:     s.retries.Load(),
		Spills:      s.spills.Load(),
		Panics:      s.panics.Load(),
		AllocsPerOp: s.AllocsPerOp(),
	}
}

// Registry is a named collection of stages plus the hook list. Stages are
// created on first use and snapshot in first-use order. A Registry may be
// long-lived (a sink accumulating across runs) or per-run (exact local
// attribution, published into the sink afterwards).
type Registry struct {
	mu     sync.Mutex
	stages map[string]*Stage
	order  []string
	hooks  atomic.Pointer[[]Hook]
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{stages: make(map[string]*Stage)}
}

// OnEvent registers a hook for every stage event in this registry.
// Register hooks before handing the registry to a run; registration is
// safe concurrently but events already in flight may miss a new hook.
func (r *Registry) OnEvent(h Hook) {
	if r == nil || h == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.loadHooks()
	hooks := make([]Hook, len(old)+1)
	copy(hooks, old)
	hooks[len(old)] = h
	r.hooks.Store(&hooks)
}

func (r *Registry) loadHooks() []Hook {
	if r == nil {
		return nil
	}
	if p := r.hooks.Load(); p != nil {
		return *p
	}
	return nil
}

// InheritHooks copies from's hooks into r, so a per-run registry fires
// the sink's hooks. Nil-safe on both sides.
func (r *Registry) InheritHooks(from *Registry) {
	if r == nil || from == nil {
		return
	}
	for _, h := range from.loadHooks() {
		r.OnEvent(h)
	}
}

// Stage returns the named stage, creating it on first use. Returns nil on
// a nil registry (and every Stage method tolerates that).
func (r *Registry) Stage(name string) *Stage {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.stages[name]; ok {
		return st
	}
	st := &Stage{reg: r, name: name}
	if r.stages == nil {
		r.stages = make(map[string]*Stage)
	}
	r.stages[name] = st
	r.order = append(r.order, name)
	return st
}

// Snapshot copies every stage's counters in first-use order. Returns nil
// on a nil registry.
func (r *Registry) Snapshot() []StageSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, len(r.order))
	copy(names, r.order)
	stages := make([]*Stage, len(names))
	for i, name := range names {
		stages[i] = r.stages[name]
	}
	r.mu.Unlock()
	out := make([]StageSnapshot, len(stages))
	for i, st := range stages {
		out[i] = st.snapshot()
	}
	return out
}

// Publish merges r's counters into to, stage by stage (created there on
// first use). Counter merges are atomic adds, so concurrent publishers
// never lose updates; a sampled allocs/op overwrites the target's. Nil-safe
// on both sides.
func (r *Registry) Publish(to *Registry) {
	if r == nil || to == nil {
		return
	}
	for _, snap := range r.Snapshot() {
		dst := to.Stage(snap.Stage)
		dst.calls.Add(snap.Calls)
		dst.busyNanos.Add(snap.BusyNanos)
		dst.itemsIn.Add(snap.ItemsIn)
		dst.itemsOut.Add(snap.ItemsOut)
		dst.retries.Add(snap.Retries)
		dst.spills.Add(snap.Spills)
		dst.panics.Add(snap.Panics)
		if snap.AllocsPerOp != 0 {
			dst.allocsBits.Store(math.Float64bits(snap.AllocsPerOp))
		}
	}
}
