package align

import (
	"strings"
	"testing"

	"dnastore/internal/dna"
	"dnastore/internal/edit"
	"dnastore/internal/xrand"
)

func seq(s string) dna.Seq { return dna.MustFromString(s) }

func TestSingleSequenceConsensusIsIdentity(t *testing.T) {
	g := NewGraph()
	s := seq("ACGTACGTGG")
	g.AddSequence(s)
	if got := g.Consensus(0); !got.Equal(s) {
		t.Fatalf("consensus = %v, want %v", got, s)
	}
	if g.NumSequences() != 1 {
		t.Fatal("NumSequences")
	}
	if g.NumNodes() != len(s) {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
}

func TestIdenticalReadsConsensus(t *testing.T) {
	s := seq("ACGGTTACGTAC")
	g := NewGraph()
	for i := 0; i < 7; i++ {
		g.AddSequence(s)
	}
	if got := g.Consensus(0); !got.Equal(s) {
		t.Fatalf("consensus = %v", got)
	}
	// All reads identical: the graph must not grow beyond the chain.
	if g.NumNodes() != len(s) {
		t.Fatalf("graph grew to %d nodes for identical reads", g.NumNodes())
	}
}

func TestSubstitutionOutvoted(t *testing.T) {
	ref := seq("ACGTACGTAC")
	mut := ref.Clone()
	mut[4] = mut[4] ^ 1 // substitution at index 4
	g := NewGraph()
	g.AddSequence(ref)
	g.AddSequence(ref)
	g.AddSequence(mut)
	if got := g.Consensus(0); !got.Equal(ref) {
		t.Fatalf("consensus = %v, want %v", got, ref)
	}
	// The substitution should occupy the same column, not a new one.
	cols := g.Columns()
	if len(cols) != len(ref) {
		t.Fatalf("%d columns, want %d", len(cols), len(ref))
	}
	if cols[4].Counts[ref[4]] != 2 || cols[4].Counts[mut[4]] != 1 {
		t.Fatalf("column 4 votes = %+v", cols[4])
	}
}

func TestDeletionOutvoted(t *testing.T) {
	ref := seq("ACGTACGTAC")
	del := append(ref[:3:3].Clone(), ref[4:]...)
	g := NewGraph()
	g.AddSequence(ref)
	g.AddSequence(del)
	g.AddSequence(ref)
	if got := g.Consensus(0); !got.Equal(ref) {
		t.Fatalf("consensus = %v, want %v", got, ref)
	}
}

func TestInsertionOutvoted(t *testing.T) {
	ref := seq("ACGTACGTAC")
	ins := append(ref[:5:5].Clone(), append(dna.Seq{dna.T}, ref[5:]...)...)
	g := NewGraph()
	g.AddSequence(ref)
	g.AddSequence(ins)
	g.AddSequence(ref)
	if got := g.Consensus(0); !got.Equal(ref) {
		t.Fatalf("consensus = %v, want %v", got, ref)
	}
}

func TestEmptyInputs(t *testing.T) {
	g := NewGraph()
	g.AddSequence(nil)
	if len(g.Consensus(0)) != 0 {
		t.Fatal("consensus of empty read should be empty")
	}
	g.AddSequence(seq("ACGT"))
	g.AddSequence(nil)
	// 1 real read vs 2 empty: gaps win everywhere.
	if len(g.Consensus(0)) != 0 {
		t.Fatalf("gap-majority columns should drop: %v", g.Consensus(0))
	}
}

func TestConsensusHelper(t *testing.T) {
	ref := seq("ACGTTGCAACGT")
	got := Consensus([]dna.Seq{ref, ref, ref}, 0)
	if !got.Equal(ref) {
		t.Fatalf("Consensus helper = %v", got)
	}
	if len(Consensus(nil, 0)) != 0 {
		t.Fatal("Consensus(nil) should be empty")
	}
}

func TestTargetLenTrimming(t *testing.T) {
	ref := seq("ACGTACGTAC")
	// Three of five reads insert the same extra base: the inserted column
	// strictly outvotes the gaps (3 > 2), so the untrimmed consensus exceeds
	// len(ref) and the trim must drop that indel-heavy column.
	insA := append(ref[:5:5].Clone(), append(dna.Seq{dna.T}, ref[5:]...)...)
	g := NewGraph()
	g.AddSequence(insA)
	g.AddSequence(insA)
	g.AddSequence(insA)
	g.AddSequence(ref)
	g.AddSequence(ref)
	full := g.Consensus(0)
	if len(full) != len(ref)+1 {
		t.Fatalf("untrimmed consensus length = %d, want %d: %v", len(full), len(ref)+1, full)
	}
	trimmed := g.Consensus(len(ref))
	if len(trimmed) != len(ref) {
		t.Fatalf("trimmed length = %d, want %d", len(trimmed), len(ref))
	}
	if !trimmed.Equal(ref) {
		t.Fatalf("trimmed consensus = %v, want %v", trimmed, ref)
	}
}

func TestRowsShape(t *testing.T) {
	ref := seq("ACGTAC")
	del := append(ref[:2:2].Clone(), ref[3:]...)
	g := NewGraph()
	g.AddSequence(ref)
	g.AddSequence(del)
	rows := g.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if len(rows[0]) != len(rows[1]) {
		t.Fatalf("row lengths differ: %q %q", rows[0], rows[1])
	}
	if strings.Count(rows[1], "-") != strings.Count(rows[0], "-")+1 {
		t.Fatalf("expected exactly one extra gap in deleted read: %q / %q", rows[0], rows[1])
	}
	// Removing gaps must reproduce the original reads.
	if strings.ReplaceAll(rows[0], "-", "") != ref.String() {
		t.Fatalf("row 0 = %q", rows[0])
	}
	if strings.ReplaceAll(rows[1], "-", "") != del.String() {
		t.Fatalf("row 1 = %q", rows[1])
	}
}

func TestRowsReproduceReads(t *testing.T) {
	rng := xrand.New(11)
	ref := dna.Random(rng, 40)
	reads := []dna.Seq{ref}
	for i := 0; i < 6; i++ {
		reads = append(reads, mutate(rng, ref, 0.08))
	}
	g := NewGraph()
	for _, r := range reads {
		g.AddSequence(r)
	}
	rows := g.Rows()
	for i, row := range rows {
		if strings.ReplaceAll(row, "-", "") != reads[i].String() {
			t.Fatalf("row %d does not reproduce read: %q vs %s", i, row, reads[i])
		}
	}
}

// mutate applies iid substitutions/insertions/deletions at rate p each third.
func mutate(rng *xrand.RNG, s dna.Seq, p float64) dna.Seq {
	out := make(dna.Seq, 0, len(s)+4)
	for _, b := range s {
		r := rng.Float64()
		switch {
		case r < p/3: // deletion
		case r < 2*p/3: // substitution
			out = append(out, dna.Base((int(b)+1+rng.Intn(3))%4))
		case r < p: // insertion before
			out = append(out, dna.Base(rng.Intn(4)), b)
		default:
			out = append(out, b)
		}
	}
	return out
}

func TestNoisyClusterRecovery(t *testing.T) {
	rng := xrand.New(42)
	recovered := 0
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		ref := dna.Random(rng, 60)
		var reads []dna.Seq
		for i := 0; i < 10; i++ {
			reads = append(reads, mutate(rng, ref, 0.06))
		}
		got := Consensus(reads, len(ref))
		if got.Equal(ref) {
			recovered++
		}
	}
	if recovered < trials*8/10 {
		t.Fatalf("recovered only %d/%d strands at 6%% error, coverage 10", recovered, trials)
	}
}

func TestConsensusCloseEvenWhenNotExact(t *testing.T) {
	rng := xrand.New(43)
	for trial := 0; trial < 20; trial++ {
		ref := dna.Random(rng, 80)
		var reads []dna.Seq
		for i := 0; i < 8; i++ {
			reads = append(reads, mutate(rng, ref, 0.1))
		}
		got := Consensus(reads, len(ref))
		if d := edit.Levenshtein(got, ref); d > 8 {
			t.Fatalf("trial %d: consensus edit distance %d from reference", trial, d)
		}
	}
}

func TestColumnsMajority(t *testing.T) {
	var c Column
	c.Counts[dna.G] = 5
	c.Counts[dna.A] = 2
	c.Gaps = 3
	b, ok := c.Majority()
	if !ok || b != dna.G {
		t.Fatalf("majority = %v,%v", b, ok)
	}
	c.Gaps = 6
	if _, ok := c.Majority(); ok {
		t.Fatal("gap-dominated column should not keep a base")
	}
	if c.Coverage() != 7 {
		t.Fatalf("coverage = %d", c.Coverage())
	}
}

// TestMajorityTieSemantics is the regression test for the tie case the doc
// used to contradict: a base that exactly ties the gap count KEEPS the
// column. Ties are ambiguous between "spurious insertion seen by half the
// reads" and "true base deleted by half the reads"; keeping the base is
// recoverable (the §VII-C indel-heavy trim removes tied insertions when the
// consensus runs long) while dropping it would silently delete true bases —
// measured on the Fig. 6 workload, strict dropping raises the NW per-index
// error peak above BMA's.
func TestMajorityTieSemantics(t *testing.T) {
	var c Column
	c.Counts[dna.T] = 3
	c.Gaps = 3
	if b, ok := c.Majority(); !ok || b != dna.T {
		t.Fatalf("base tying the gap count must keep the column: %v,%v", b, ok)
	}
	c.Gaps = 4
	if _, ok := c.Majority(); ok {
		t.Fatal("outvoted base kept the column")
	}
	// An all-gap column (support can be zero after an empty read) never
	// contributes a base, even though 0 ties Gaps == 0 vacuously.
	var empty Column
	if _, ok := empty.Majority(); ok {
		t.Fatal("empty column kept a base")
	}
	empty.Gaps = 2
	if _, ok := empty.Majority(); ok {
		t.Fatal("all-gap column kept a base")
	}
	// End-to-end: a 2-read cluster where one read inserts a base produces a
	// tied column. The untrimmed consensus keeps it; the targetLen trim —
	// not the majority vote — is what removes it.
	ref := seq("ACGTACGTAC")
	ins := append(ref[:5:5].Clone(), append(dna.Seq{dna.T}, ref[5:]...)...)
	g := NewGraph()
	g.AddSequence(ref)
	g.AddSequence(ins)
	if got := g.Consensus(0); len(got) != len(ref)+1 {
		t.Fatalf("tied insertion column should survive the untrimmed vote: %v", got)
	}
	if got := g.Consensus(len(ref)); !got.Equal(ref) {
		t.Fatalf("trim did not remove the tied insertion: %v, want %v", got, ref)
	}
}

// TestGraphResetReuse checks the worker-pool calling convention: one Graph
// reused across clusters via ConsensusOf must produce exactly the same
// consensus as a fresh graph per cluster.
func TestGraphResetReuse(t *testing.T) {
	rng := xrand.New(9)
	reused := NewGraph()
	for trial := 0; trial < 50; trial++ {
		ref := dna.Random(rng, 20+rng.Intn(80))
		var reads []dna.Seq
		for i := 0; i < 2+rng.Intn(8); i++ {
			reads = append(reads, mutate(rng, ref, 0.08))
		}
		if rng.Intn(5) == 0 {
			reads = append(reads, nil) // empty reads must stay harmless
		}
		want := Consensus(reads, len(ref))
		got := reused.ConsensusOf(reads, len(ref))
		if !got.Equal(want) {
			t.Fatalf("trial %d: reused-graph consensus %v != fresh %v", trial, got, want)
		}
		if reused.NumSequences() != len(reads) {
			t.Fatalf("trial %d: NumSequences = %d after reset, want %d", trial, reused.NumSequences(), len(reads))
		}
	}
}

// TestAddSequenceStopsAllocating pins the scratch reuse: once a reused graph
// has seen a cluster of a given shape, adding further same-length reads to a
// reset graph performs only O(1) bookkeeping allocations (path slice and
// column machinery), not O(nodes) DP rows.
func TestAddSequenceStopsAllocating(t *testing.T) {
	rng := xrand.New(10)
	ref := dna.Random(rng, 110)
	var reads []dna.Seq
	for i := 0; i < 10; i++ {
		reads = append(reads, mutate(rng, ref, 0.06))
	}
	g := NewGraph()
	g.ConsensusOf(reads, len(ref)) // warm node, path and DP scratch
	n := testing.AllocsPerRun(20, func() {
		g.Reset()
		for _, r := range reads {
			g.AddSequence(r)
		}
	})
	// The seed implementation allocated 3 slices per node per read (~3000
	// allocations for this cluster); the scratch path only re-allocates a
	// path slice per read plus occasional per-node slice growth.
	if n > 60 {
		t.Errorf("adding 10 reads allocates %.0f objects per run; scratch reuse is not effective", n)
	}
}

func TestGraphDeterminism(t *testing.T) {
	rng := xrand.New(3)
	ref := dna.Random(rng, 50)
	var reads []dna.Seq
	for i := 0; i < 6; i++ {
		reads = append(reads, mutate(rng, ref, 0.08))
	}
	a := Consensus(reads, len(ref))
	b := Consensus(reads, len(ref))
	if !a.Equal(b) {
		t.Fatal("consensus is nondeterministic")
	}
}

func BenchmarkConsensusCoverage10Len110(b *testing.B) {
	rng := xrand.New(1)
	ref := dna.Random(rng, 110)
	var reads []dna.Seq
	for i := 0; i < 10; i++ {
		reads = append(reads, mutate(rng, ref, 0.06))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Consensus(reads, len(ref))
	}
}
