package align

import (
	"testing"

	"dnastore/internal/dna"
	"dnastore/internal/xrand"
)

// pairsEqual compares two alignment pair lists cell-for-cell.
func pairsEqual(a, b []pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// clonePairs copies a scratch-backed pair list so it survives the next
// alignment call on the same graph.
func clonePairs(p []pair) []pair { return append([]pair(nil), p...) }

// TestBandedMatchesDPPairs is the core differential property of this PR's
// fast path: on arbitrary clusters — clean, noisy, junk, mixed lengths — the
// windowed kernel (with its DP fallback) must return exactly the pair list
// the exhaustive DP returns, read by read, so the graphs it builds are
// indistinguishable from the reference's.
func TestBandedMatchesDPPairs(t *testing.T) {
	rng := xrand.New(77)
	lengths := []int{6, 24, 60, 110, 200}
	rates := []float64{0, 0.03, 0.08, 0.15, 0.35}
	for _, n := range lengths {
		for _, p := range rates {
			for trial := 0; trial < 4; trial++ {
				ref := dna.Random(rng, n)
				var reads []dna.Seq
				cov := 2 + rng.Intn(8)
				for i := 0; i < cov; i++ {
					reads = append(reads, mutate(rng, ref, p))
				}
				// Adversarial extras: an unrelated junk read (hopeless for
				// the banded bound at realistic lengths), a tiny fragment,
				// and an empty read.
				reads = append(reads, dna.Random(rng, n), ref[:n/3].Clone(), nil)

				fast := NewGraph()
				refG := NewGraph()
				refG.SetReferenceDP(true)
				for ri, r := range reads {
					if len(r) > 0 && fast.NumNodes() > 0 {
						got := clonePairs(fast.alignToGraph(r))
						want := refG.alignToGraph(r)
						if !pairsEqual(got, want) {
							t.Fatalf("len=%d p=%.2f trial=%d read=%d: banded pairs diverge from DP\n got=%v\nwant=%v",
								n, p, trial, ri, got, want)
						}
					}
					fast.AddSequence(r)
					refG.AddSequence(r)
				}
				got := fast.Consensus(n)
				want := refG.Consensus(n)
				if !got.Equal(want) {
					t.Fatalf("len=%d p=%.2f trial=%d: consensus diverges: %v vs %v", n, p, trial, got, want)
				}
			}
		}
	}
}

// TestBandedFallbackHopeless pins the fallback contract: a read that cannot
// reach the pruning bound makes the banded kernel report !ok (it must not
// fabricate a traceback), and alignToGraph still produces the exact DP pair
// list via the fallback.
func TestBandedFallbackHopeless(t *testing.T) {
	rng := xrand.New(78)
	ref := dna.Random(rng, 160)
	g := NewGraph()
	g.AddSequence(ref)
	g.AddSequence(mutate(rng, ref, 0.05))

	// A 160-base random read shares ~25% of bases with the graph: expected
	// score far below 2m - slack, so the bound cannot be met.
	junk := dna.Random(rng, 160)
	if _, ok := g.alignToGraphBanded(junk); ok {
		t.Fatal("random 160-base read against an unrelated graph met the pruning bound")
	}
	got := clonePairs(g.alignToGraph(junk))
	want := g.alignToGraphDP(junk)
	if !pairsEqual(got, want) {
		t.Fatalf("fallback pair list diverges from DP:\n got=%v\nwant=%v", got, want)
	}
}

// TestBandedAcceptsCleanRead pins the other side: a read identical to the
// graph's backbone must be handled by the banded kernel itself (ok == true),
// otherwise the fast path silently degrades to DP-always.
func TestBandedAcceptsCleanRead(t *testing.T) {
	rng := xrand.New(79)
	ref := dna.Random(rng, 110)
	g := NewGraph()
	g.AddSequence(ref)
	g.AddSequence(mutate(rng, ref, 0.03))
	if _, ok := g.alignToGraphBanded(ref); !ok {
		t.Fatal("clean read rejected by the banded kernel")
	}
}

// TestConsensusColumnsParallel pins the ConsensusColumns contract: the
// returned columns are parallel to the consensus base-for-base, each column's
// majority is the base at that position, and the sequence equals Consensus.
func TestConsensusColumnsParallel(t *testing.T) {
	rng := xrand.New(80)
	for trial := 0; trial < 20; trial++ {
		ref := dna.Random(rng, 30+rng.Intn(90))
		var reads []dna.Seq
		for i := 0; i < 3+rng.Intn(7); i++ {
			reads = append(reads, mutate(rng, ref, 0.08))
		}
		g := NewGraph()
		for _, r := range reads {
			g.AddSequence(r)
		}
		seq, cols := g.ConsensusColumns(len(ref))
		if !seq.Equal(g.Consensus(len(ref))) {
			t.Fatalf("trial %d: ConsensusColumns sequence differs from Consensus", trial)
		}
		if len(cols) != len(seq) {
			t.Fatalf("trial %d: %d columns for %d consensus bases", trial, len(cols), len(seq))
		}
		for i, c := range cols {
			b, ok := c.Majority()
			if !ok || b != seq[i] {
				t.Fatalf("trial %d: column %d majority %v/%v does not produce consensus base %v", trial, i, b, ok, seq[i])
			}
		}
		// The kept columns are a subset of all columns; with noisy reads the
		// full column list is at least as long.
		if all := g.Columns(); len(all) < len(cols) {
			t.Fatalf("trial %d: kept %d columns out of %d", trial, len(cols), len(all))
		}
	}
}

// TestReferenceDPToggle pins SetReferenceDP: the toggle routes through the
// exhaustive kernel (observable only through identical results, so this just
// guards the plumbing against inversion).
func TestReferenceDPToggle(t *testing.T) {
	rng := xrand.New(81)
	ref := dna.Random(rng, 70)
	var reads []dna.Seq
	for i := 0; i < 6; i++ {
		reads = append(reads, mutate(rng, ref, 0.06))
	}
	g := NewGraph()
	g.SetReferenceDP(true)
	want := g.ConsensusOf(reads, len(ref))
	g.SetReferenceDP(false)
	got := g.ConsensusOf(reads, len(ref))
	if !got.Equal(want) {
		t.Fatalf("fast consensus %v != reference %v", got, want)
	}
}

func BenchmarkAlignToGraphBanded(b *testing.B) {
	rng := xrand.New(2)
	ref := dna.Random(rng, 110)
	var reads []dna.Seq
	for i := 0; i < 8; i++ {
		reads = append(reads, mutate(rng, ref, 0.03))
	}
	g := NewGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ConsensusOf(reads, len(ref))
	}
}

func BenchmarkAlignToGraphDP(b *testing.B) {
	rng := xrand.New(2)
	ref := dna.Random(rng, 110)
	var reads []dna.Seq
	for i := 0; i < 8; i++ {
		reads = append(reads, mutate(rng, ref, 0.03))
	}
	g := NewGraph()
	g.SetReferenceDP(true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ConsensusOf(reads, len(ref))
	}
}
