package align

import "dnastore/internal/dna"

// Windowed wavefront alignment kernel.
//
// The exhaustive kernel (poa_dp.go) fills every cell of every node row:
// O(nodes·m) with m the read length. For the clusters reconstruction actually
// sees, the optimal alignment hugs the diagonal — a read differs from the
// graph it came from by a handful of edits — so almost all of that table is
// spent computing scores that cannot possibly be on the optimal path. This
// kernel prunes them with an exact score bound:
//
//	B        = matchScore·m − slack        (required final score)
//	bound(j) = B − matchScore·(m−j)        (= 2j − slack with current scores)
//
// Any cell on an alignment whose final score reaches B must itself score at
// least bound(j): the remaining m−j read bases can contribute at most
// matchScore each. Cells below bound(j) are "dead" and never computed. The
// pruning is *exact*, not heuristic:
//
//   - A dead predecessor's contribution to any cell is strictly below that
//     cell's bound (diag adds ≤ matchScore and bound grows by exactly
//     matchScore per column; vert/horz add gapScore < 0), so dropping it can
//     neither change nor tie the winner of any live cell. Candidate order is
//     the same as the reference (predecessors in declaration order, diagonal
//     then vertical, horizontal last, strict >), so tie-breaking is identical.
//   - Computed values are never above the true DP values, so a cell that
//     computes below its bound is genuinely dead ("computed < bound ⇔ true
//     value < bound") — live detection cannot miss a live cell.
//   - If the best sink score comes out below B (= bound(m)), no alignment
//     reaches the bound at all: the read is hopeless for this kernel, the
//     banded attempt has already collapsed to near-zero work per row, and
//     alignToGraph falls back to the exhaustive DP for the exact answer.
//
// Either way the resulting pair list is bit-identical to alignToGraphDP
// (differential tests in poa_fast_test.go and recon's FuzzReconDispatch).
//
// Each row's live window [winLo, winHi] is discovered during its sweep; the
// next row only sweeps the union of its predecessors' windows plus one cell
// (diagonal reach), then extends right while horizontal-only cells stay
// above the bound. Single-predecessor nodes — the vast majority in a POA
// graph, which is a chain with occasional bubbles — take a specialized
// straight-line sweep with the predecessor row and its window hoisted out of
// the loop.

// floorScore doubles as the reference kernel's "no candidate" initializer and
// the value substituted for pruned cells; it is low enough that adding any
// move penalty keeps it below every reachable score.
const floorScore = -1 << 30

// alignSlack sizes the pruning bound's slack for a read of length m. The
// slack is the score deficit (vs. a perfect all-match alignment) the banded
// sweep still tolerates: with the current scores one substitution costs 5 and
// one indel 6, so slack/5 is roughly the number of edits a read may carry
// before the kernel gives up and falls back to the exhaustive DP. max(56,
// m/2) tolerates ~10% per-base error at any length and makes the fallback
// rare at the simulator's operating points, while keeping the live band (≈
// 5·slack/12 cells per row) a fraction of the full row at realistic strand
// lengths.
func alignSlack(m int) int {
	s := m / 2
	if s < 56 {
		s = 56
	}
	return s
}

// alignToGraphBanded is the windowed fast-path alignment. It returns ok ==
// false when no alignment reaches the pruning bound, in which case the caller
// must rerun the exhaustive DP; when ok, the pair list is bit-identical to
// alignToGraphDP's.
func (g *Graph) alignToGraphBanded(s dna.Seq) ([]pair, bool) {
	m := len(s)
	order := g.topoOrder()
	nNodes := len(g.nodes)
	sc := &g.scratch

	stride := m + 1
	sc.score = growInts(sc.score, nNodes*stride)
	score := sc.score
	if cap(sc.move) < nNodes*stride {
		sc.move = make([]uint8, nNodes*stride)
		sc.from = make([]int32, nNodes*stride)
	}
	move := sc.move[:nNodes*stride]
	from := sc.from[:nNodes*stride]
	sc.winLo = growInts(sc.winLo, nNodes)
	sc.winHi = growInts(sc.winHi, nNodes)
	winLo, winHi := sc.winLo, sc.winHi

	// Virtual start row S0[j] = j*gapScore, filled completely: it is O(m),
	// exact by construction, and source rows read it unguarded.
	sc.s0 = growInts(sc.s0, stride)
	s0 := sc.s0
	s0[0] = 0
	for j := 1; j <= m; j++ {
		s0[j] = j * gapScore
	}
	slack := alignSlack(m)
	// S0's live range: j*gapScore >= 2j - slack  ⇔  j <= slack/6.
	s0Hi := slack / 6
	if s0Hi > m {
		s0Hi = m
	}

	for _, id := range order {
		n := &g.nodes[id]
		rowOff := id * stride
		row := score[rowOff : rowOff+stride]
		mrow := move[rowOff : rowOff+stride]
		frow := from[rowOff : rowOff+stride]

		// Sweep range from the predecessors' live windows: diagonal moves
		// reach one past a predecessor's last live cell.
		var lo, hiBase int
		if len(n.preds) == 0 {
			lo, hiBase = 0, s0Hi+1
		} else {
			lo, hiBase = stride, -1
			for _, p := range n.preds {
				if winLo[p] > winHi[p] {
					continue // predecessor row is dead
				}
				if winLo[p] < lo {
					lo = winLo[p]
				}
				if winHi[p] > hiBase {
					hiBase = winHi[p]
				}
			}
			if hiBase < 0 {
				// Every predecessor collapsed: this row is dead too. Mark
				// the window empty and floor the sink cell so the final
				// sink scan cannot read a stale score.
				winLo[id], winHi[id] = 1, 0
				row[m] = floorScore
				continue
			}
			hiBase++
		}
		if hiBase > m {
			hiBase = m
		}

		var wLo, wHi int
		switch {
		case len(n.preds) == 0:
			wLo, wHi = sweepRowS0(s, n.base, int32(id), row, s0, mrow, frow, lo, hiBase, slack)
		case len(n.preds) == 1:
			p := n.preds[0]
			prow := score[p*stride : p*stride+stride]
			wLo, wHi = sweepRowSingle(s, n.base, int32(id), row, prow, mrow, frow, winLo[p], winHi[p], hiBase, slack, int32(p))
		default:
			wLo, wHi = sweepRowMulti(s, n.base, int32(id), row, score, stride, n.preds, winLo, winHi, mrow, frow, lo, hiBase, slack)
		}
		computedHi := hiBase
		if wHi == hiBase && hiBase < m {
			// The rightmost swept cell is live: extend right while the
			// horizontal-only chain stays above the bound (out there every
			// predecessor cell is past its window, so horizontal is the only
			// candidate that can reach the bound).
			computedHi = extendRow(row, mrow, frow, int32(id), hiBase+1, m, slack)
			wHi = computedHi
		}
		if computedHi < m {
			row[m] = floorScore
		}
		winLo[id], winHi[id] = wLo, wHi
	}

	// Global alignment ends at a sink node with the full read consumed —
	// same scan and first-wins tie-break as the reference.
	bestEnd, bestScore := -1, floorScore
	for _, id := range order {
		if len(g.nodes[id].succs) == 0 && score[id*stride+m] > bestScore {
			bestScore = score[id*stride+m]
			bestEnd = id
		}
	}
	if bestScore < matchScore*m-slack {
		return nil, false
	}
	return g.traceback(bestEnd, m, stride, move, from), true
}

// sweepRowS0 computes cells [lo..hi] of a source node's row against the fully
// computed virtual start row. Returns the row's live window (empty as
// (lo, lo-1) when no cell reaches the bound).
//
//dnalint:hotpath
func sweepRowS0(s dna.Seq, base dna.Base, selfID int32, row, s0 []int, mrow []uint8, frow []int32, lo, hi, slack int) (int, int) {
	wLo, wHi := lo, lo-1
	for j := lo; j <= hi; j++ {
		best, bestMove, bestFrom := floorScore, uint8(moveNone), int32(-1)
		if j >= 1 {
			v := s0[j-1] + subScore
			if base == s[j-1] {
				v = s0[j-1] + matchScore
			}
			if v > best {
				best, bestMove, bestFrom = v, moveDiag, -1
			}
		}
		if v := s0[j] + gapScore; v > best {
			best, bestMove, bestFrom = v, moveVert, -1
		}
		if j-1 >= lo {
			if v := row[j-1] + gapScore; v > best {
				best, bestMove, bestFrom = v, moveHorz, selfID
			}
		}
		row[j] = best
		mrow[j] = bestMove
		frow[j] = bestFrom
		if best >= 2*j-slack {
			if wLo > wHi {
				wLo = j
			}
			wHi = j
		}
	}
	return wLo, wHi
}

// sweepRowSingle is the specialized sweep for the common single-predecessor
// (chain) node. The caller guarantees the sweep range is exactly the
// predecessor window's diagonal reach — it starts at plo and ends at
// hi == min(phi+1, m) — which splits the row into three statically known
// phases: the first cell (vertical candidate only), the interior
// [plo+1 .. min(hi, phi)] where all three candidates are in-window (a plain
// banded NW row sweep with no per-cell guards), and the diagonal edge cell
// phi+1 (no vertical). Candidate order within each phase matches the
// reference (diagonal, vertical, horizontal; strict >), so tie-breaking is
// identical; pruned candidates sit below the bound and cannot win or tie a
// live cell.
//
//dnalint:hotpath
func sweepRowSingle(s dna.Seq, base dna.Base, selfID int32, row, prow []int, mrow []uint8, frow []int32, plo, phi, hi, slack int, predID int32) (int, int) {
	row = row[: hi+1 : hi+1]
	mrow = mrow[: hi+1 : hi+1]
	frow = frow[: hi+1 : hi+1]
	wLo, wHi := plo, plo-1
	// First cell j == plo: diagonal would read prow[plo-1] and horizontal
	// row[plo-1], both pruned; only the vertical candidate remains.
	v0 := prow[plo] + gapScore
	row[plo] = v0
	mrow[plo] = moveVert
	frow[plo] = predID
	if v0 >= 2*plo-slack {
		wLo, wHi = plo, plo
	}
	interiorHi := hi
	if interiorHi > phi {
		interiorHi = phi
	}
	bnd := 2*plo - slack
	for j := plo + 1; j <= interiorHi; j++ {
		bnd += 2
		p := prow[j-1]
		d := p + subScore
		if base == s[j-1] {
			d = p + matchScore
		}
		best, bestMove := d, uint8(moveDiag)
		if v := prow[j] + gapScore; v > best {
			best, bestMove = v, moveVert
		}
		bestFrom := predID
		if v := row[j-1] + gapScore; v > best {
			best, bestMove, bestFrom = v, moveHorz, selfID
		}
		row[j] = best
		mrow[j] = bestMove
		frow[j] = bestFrom
		if best >= bnd {
			if wLo > wHi {
				wLo = j
			}
			wHi = j
		}
	}
	// Diagonal edge cell j == phi+1 (absent when hi was clamped to m): the
	// vertical candidate would read prow[phi+1], outside the window.
	if hi == phi+1 {
		p := prow[hi-1]
		d := p + subScore
		if base == s[hi-1] {
			d = p + matchScore
		}
		best, bestMove, bestFrom := d, uint8(moveDiag), predID
		if v := row[hi-1] + gapScore; v > best {
			best, bestMove, bestFrom = v, moveHorz, selfID
		}
		row[hi] = best
		mrow[hi] = bestMove
		frow[hi] = bestFrom
		if best >= 2*hi-slack {
			if wLo > wHi {
				wLo = hi
			}
			wHi = hi
		}
	}
	return wLo, wHi
}

// sweepRowMulti handles bubble-join nodes with several predecessors: the
// same straight-line candidate code as sweepRowSingle, iterated over the
// predecessors in declaration order so tie-breaking matches the reference.
//
//dnalint:hotpath
func sweepRowMulti(s dna.Seq, base dna.Base, selfID int32, row, score []int, stride int, preds []int, winLo, winHi []int, mrow []uint8, frow []int32, lo, hi, slack int) (int, int) {
	wLo, wHi := lo, lo-1
	for j := lo; j <= hi; j++ {
		best, bestMove, bestFrom := floorScore, uint8(moveNone), int32(-1)
		for _, p := range preds {
			plo, phi := winLo[p], winHi[p]
			prow := score[p*stride : p*stride+stride]
			if j >= 1 && j-1 >= plo && j-1 <= phi {
				v := prow[j-1] + subScore
				if base == s[j-1] {
					v = prow[j-1] + matchScore
				}
				if v > best {
					best, bestMove, bestFrom = v, moveDiag, int32(p)
				}
			}
			if j >= plo && j <= phi {
				if v := prow[j] + gapScore; v > best {
					best, bestMove, bestFrom = v, moveVert, int32(p)
				}
			}
		}
		if j-1 >= lo {
			if v := row[j-1] + gapScore; v > best {
				best, bestMove, bestFrom = v, moveHorz, selfID
			}
		}
		row[j] = best
		mrow[j] = bestMove
		frow[j] = bestFrom
		if best >= 2*j-slack {
			if wLo > wHi {
				wLo = j
			}
			wHi = j
		}
	}
	return wLo, wHi
}

// extendRow continues a row past the predecessors' diagonal reach: out there
// the only candidate above the bound is the horizontal chain, which is exact
// because it starts from a live (hence exact) cell. Extends while the chain
// stays above the bound and returns the last computed index.
//
//dnalint:hotpath
func extendRow(row []int, mrow []uint8, frow []int32, selfID int32, j, m, slack int) int {
	for ; j <= m; j++ {
		v := row[j-1] + gapScore
		if v < 2*j-slack {
			break
		}
		row[j] = v
		mrow[j] = moveHorz
		frow[j] = selfID
	}
	return j - 1
}
