package align

import "dnastore/internal/dna"

// alignToGraphDP is the retained exhaustive-DP alignment kernel: global
// Needleman–Wunsch over the graph's topological order, computing every cell
// of every node row. It is the reference the windowed kernel in poa_fast.go
// is held bit-identical to (differential tests + FuzzReconDispatch), and the
// exact fallback when that kernel's pruning bound fails. Do not "improve"
// this body — its cell-evaluation order defines the tie-breaking contract
// both kernels must honour.
func (g *Graph) alignToGraphDP(s dna.Seq) []pair {
	m := len(s)
	order := g.topoOrder()
	nNodes := len(g.nodes)
	sc := &g.scratch

	// DP tables, flat and scratch-backed: cell (node id, read prefix length
	// j) lives at id*stride + j. One grow replaces the seed's three fresh
	// slices per node per added read.
	stride := m + 1
	sc.score = growInts(sc.score, nNodes*stride)
	score := sc.score
	if cap(sc.move) < nNodes*stride {
		sc.move = make([]uint8, nNodes*stride)
		sc.from = make([]int32, nNodes*stride)
	}
	move := sc.move[:nNodes*stride]
	from := sc.from[:nNodes*stride]
	// Virtual start: S0[j] = j*gap (leading insertions).
	sc.s0 = growInts(sc.s0, stride)
	s0 := sc.s0
	s0[0] = 0
	for j := 1; j <= m; j++ {
		s0[j] = j * gapScore
	}

	// The DP loop body over (id, j): best/bestMove/bestFrom live outside the
	// loop so the consider closure is built once per call, not once per cell.
	var (
		j        int
		base     dna.Base
		best     int
		bestMove uint8
		bestFrom int32
	)
	// Diagonal and vertical moves from one predecessor row (or the virtual
	// start row for source nodes).
	consider := func(prevRow []int, prevID int32) {
		if j >= 1 {
			sc := prevRow[j-1] + subScore
			if base == s[j-1] {
				sc = prevRow[j-1] + matchScore
			}
			if sc > best {
				best, bestMove, bestFrom = sc, moveDiag, prevID
			}
		}
		if sc := prevRow[j] + gapScore; sc > best {
			best, bestMove, bestFrom = sc, moveVert, prevID
		}
	}
	for _, id := range order {
		n := &g.nodes[id]
		base = n.base
		row := score[id*stride : id*stride+stride]
		for j = 0; j <= m; j++ {
			best = -1 << 30
			bestMove = moveNone
			bestFrom = -1
			if len(n.preds) == 0 {
				consider(s0, -1)
			}
			for _, p := range n.preds {
				consider(score[p*stride:p*stride+stride], int32(p))
			}
			// Horizontal: insertion in read.
			if j >= 1 {
				if sc := row[j-1] + gapScore; sc > best {
					best, bestMove, bestFrom = sc, moveHorz, int32(id)
				}
			}
			row[j] = best
			move[id*stride+j] = bestMove
			from[id*stride+j] = bestFrom
		}
	}

	// Global alignment ends at a sink node with the full read consumed.
	bestEnd, bestScore := -1, -1<<30
	for _, id := range order {
		if len(g.nodes[id].succs) == 0 && score[id*stride+m] > bestScore {
			bestScore = score[id*stride+m]
			bestEnd = id
		}
	}

	return g.traceback(bestEnd, m, stride, move, from)
}
