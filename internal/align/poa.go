// Package align implements partial-order alignment (POA) for multiple
// sequence alignment of noisy reads, following Lee, Grasso and Sharlow
// (Bioinformatics 2002) and Lee (Bioinformatics 2003). The toolkit's
// Needleman–Wunsch trace-reconstruction algorithm (§VII-C of the paper) is
// built on this package: reads of a cluster are aligned into a POA graph,
// the graph induces alignment columns, and the consensus strand is the
// per-column majority vote with indel-heavy columns trimmed to the expected
// strand length. It replaces the SIMD `spoa` library used by the paper.
//
// Alignment of a sequence to the graph is global Needleman–Wunsch over the
// graph's topological order, with affine-free spoa-like scores (match
// rewarded, substitution and gap penalized) so alignments anchor on exact
// runs.
package align

import (
	"sort"

	"dnastore/internal/dna"
)

// Alignment scores, spoa-like ratios: matches are rewarded so alignments
// anchor on long exact runs instead of drifting through zero-cost ties.
const (
	matchScore = 2
	subScore   = -3
	gapScore   = -4
)

type node struct {
	base    dna.Base
	preds   []int // predecessor node ids (edges into this node)
	edgeN   []int // parallel to preds: number of reads traversing the edge
	succs   []int // successor node ids
	aligned []int // ids of nodes in the same alignment column
	support int   // number of reads whose path includes this node
}

// Graph is a partial-order alignment graph. The zero value is not usable;
// construct with NewGraph. Graph is not safe for concurrent mutation;
// reconstruction parallelizes across clusters, one Graph per worker, reused
// across that worker's clusters via Reset.
//
//dnalint:scratch
type Graph struct {
	nodes   []node
	paths   [][]int // node path of each added sequence, in insertion order
	scratch poaScratch
}

// poaScratch holds the DP and traversal buffers reused across AddSequence
// calls: flat score/move/from tables indexed node*(m+1)+j, the virtual start
// row, Kahn's-algorithm working sets and the traceback pair list. Buffers
// grow on demand and are never shrunk, so after the first few reads the
// alignment of an additional read performs no table allocations at all.
//
//dnalint:scratch
type poaScratch struct {
	score []int
	move  []uint8
	from  []int32
	s0    []int
	indeg []int
	order []int
	ready []int
	pairs []pair
}

// NewGraph returns an empty POA graph.
func NewGraph() *Graph { return &Graph{} }

// Reset clears the graph for reuse on a new cluster while keeping the node,
// path and DP scratch capacity. Reconstruction workers hold one Graph each
// and Reset it between clusters instead of allocating a fresh graph.
func (g *Graph) Reset() {
	g.nodes = g.nodes[:0]
	g.paths = g.paths[:0]
}

// NumSequences returns how many sequences have been added.
func (g *Graph) NumSequences() int { return len(g.paths) }

// NumNodes returns the number of graph nodes (for diagnostics).
func (g *Graph) NumNodes() int { return len(g.nodes) }

func (g *Graph) newNode(b dna.Base) int {
	if len(g.nodes) < cap(g.nodes) {
		// Reuse the slot (and its per-node slice capacity) left by Reset.
		g.nodes = g.nodes[:len(g.nodes)+1]
		n := &g.nodes[len(g.nodes)-1]
		n.base = b
		n.preds = n.preds[:0]
		n.edgeN = n.edgeN[:0]
		n.succs = n.succs[:0]
		n.aligned = n.aligned[:0]
		n.support = 0
	} else {
		g.nodes = append(g.nodes, node{base: b})
	}
	return len(g.nodes) - 1
}

func (g *Graph) addEdge(from, to int) {
	n := &g.nodes[to]
	for i, p := range n.preds {
		if p == from {
			n.edgeN[i]++
			return
		}
	}
	n.preds = append(n.preds, from)
	n.edgeN = append(n.edgeN, 1)
	g.nodes[from].succs = append(g.nodes[from].succs, to)
}

// growInts returns buf resized to length n, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// topoOrder returns the node ids in a topological order (Kahn's algorithm,
// smallest id first for determinism). The returned slice is backed by the
// graph's scratch and valid until the next topoOrder call.
func (g *Graph) topoOrder() []int {
	sc := &g.scratch
	sc.indeg = growInts(sc.indeg, len(g.nodes))
	indeg := sc.indeg
	for i := range g.nodes {
		indeg[i] = len(g.nodes[i].preds)
	}
	ready := growInts(sc.ready, len(g.nodes))[:0]
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	sort.Ints(ready)
	order := growInts(sc.order, len(g.nodes))[:0]
	// Pop from the front with a head index (instead of reslicing) so the
	// scratch buffer's base pointer survives for the next call; the pending
	// region ready[head:] is kept sorted.
	head := 0
	for head < len(ready) {
		n := ready[head]
		head++
		order = append(order, n)
		for _, s := range g.nodes[n].succs {
			indeg[s]--
			if indeg[s] == 0 {
				// Insert keeping the ready list sorted; lists are short.
				pos := head + sort.SearchInts(ready[head:], s)
				ready = append(ready, 0)
				copy(ready[pos+1:], ready[pos:])
				ready[pos] = s
			}
		}
	}
	sc.order = order
	sc.ready = ready[:0]
	return order
}

// alignment move codes for traceback.
const (
	moveNone = iota
	moveDiag // consume graph node + read base
	moveVert // consume graph node only (deletion in read)
	moveHorz // consume read base only (insertion in read)
)

// aligned pair produced by traceback: Node == -1 means insertion (read base
// with no node), Pos == -1 means deletion (node with no read base).
type pair struct {
	node int
	pos  int
}

// alignToGraph globally aligns s against the graph and returns the pair list
// in forward order. The returned slice is backed by the graph's scratch and
// valid until the next alignToGraph call.
func (g *Graph) alignToGraph(s dna.Seq) []pair {
	m := len(s)
	order := g.topoOrder()
	nNodes := len(g.nodes)
	sc := &g.scratch

	// DP tables, flat and scratch-backed: cell (node id, read prefix length
	// j) lives at id*stride + j. One grow replaces the seed's three fresh
	// slices per node per added read.
	stride := m + 1
	sc.score = growInts(sc.score, nNodes*stride)
	score := sc.score
	if cap(sc.move) < nNodes*stride {
		sc.move = make([]uint8, nNodes*stride)
		sc.from = make([]int32, nNodes*stride)
	}
	move := sc.move[:nNodes*stride]
	from := sc.from[:nNodes*stride]
	// Virtual start: S0[j] = j*gap (leading insertions).
	sc.s0 = growInts(sc.s0, stride)
	s0 := sc.s0
	s0[0] = 0
	for j := 1; j <= m; j++ {
		s0[j] = j * gapScore
	}

	// The DP loop body over (id, j): best/bestMove/bestFrom live outside the
	// loop so the consider closure is built once per call, not once per cell.
	var (
		j        int
		base     dna.Base
		best     int
		bestMove uint8
		bestFrom int32
	)
	// Diagonal and vertical moves from one predecessor row (or the virtual
	// start row for source nodes).
	consider := func(prevRow []int, prevID int32) {
		if j >= 1 {
			sc := prevRow[j-1] + subScore
			if base == s[j-1] {
				sc = prevRow[j-1] + matchScore
			}
			if sc > best {
				best, bestMove, bestFrom = sc, moveDiag, prevID
			}
		}
		if sc := prevRow[j] + gapScore; sc > best {
			best, bestMove, bestFrom = sc, moveVert, prevID
		}
	}
	for _, id := range order {
		n := &g.nodes[id]
		base = n.base
		row := score[id*stride : id*stride+stride]
		for j = 0; j <= m; j++ {
			best = -1 << 30
			bestMove = moveNone
			bestFrom = -1
			if len(n.preds) == 0 {
				consider(s0, -1)
			}
			for _, p := range n.preds {
				consider(score[p*stride:p*stride+stride], int32(p))
			}
			// Horizontal: insertion in read.
			if j >= 1 {
				if sc := row[j-1] + gapScore; sc > best {
					best, bestMove, bestFrom = sc, moveHorz, int32(id)
				}
			}
			row[j] = best
			move[id*stride+j] = bestMove
			from[id*stride+j] = bestFrom
		}
	}

	// Global alignment ends at a sink node with the full read consumed.
	bestEnd, bestScore := -1, -1<<30
	for _, id := range order {
		if len(g.nodes[id].succs) == 0 && score[id*stride+m] > bestScore {
			bestScore = score[id*stride+m]
			bestEnd = id
		}
	}

	// Traceback.
	rev := sc.pairs[:0]
	cur, tj := bestEnd, m
	for cur != -1 {
		switch move[cur*stride+tj] {
		case moveDiag:
			rev = append(rev, pair{cur, tj - 1})
			next := int(from[cur*stride+tj])
			cur, tj = next, tj-1
		case moveVert:
			rev = append(rev, pair{cur, -1})
			cur = int(from[cur*stride+tj])
		case moveHorz:
			rev = append(rev, pair{-1, tj - 1})
			tj--
		default:
			// Source node with moveNone at j==0 cannot happen because diag /
			// vert from the virtual start always sets a move; guard anyway.
			cur = -1
		}
	}
	// Leading insertions before the first graph node.
	for tj > 0 {
		rev = append(rev, pair{-1, tj - 1})
		tj--
	}
	// Reverse into forward order.
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	sc.pairs = rev[:0]
	return rev
}

// nextPathBuf extends g.paths by one slot and returns that slot's buffer,
// emptied: after a Reset the slot retains its previous backing array, so a
// reused graph records paths without reallocating them. The caller builds
// the path with append and stores the final header with setPath.
func (g *Graph) nextPathBuf(capHint int) []int {
	if len(g.paths) < cap(g.paths) {
		g.paths = g.paths[:len(g.paths)+1]
		return g.paths[len(g.paths)-1][:0]
	}
	g.paths = append(g.paths, make([]int, 0, capHint))
	return g.paths[len(g.paths)-1]
}

func (g *Graph) setPath(path []int) { g.paths[len(g.paths)-1] = path }

// AddSequence aligns s to the graph and merges it. The first sequence seeds
// the graph as a simple chain. Empty sequences are recorded with an empty
// path and do not modify the graph.
func (g *Graph) AddSequence(s dna.Seq) {
	path := g.nextPathBuf(len(s) + 1)
	if len(s) == 0 {
		g.setPath(path)
		return
	}
	if len(g.nodes) == 0 {
		prev := -1
		for _, b := range s {
			id := g.newNode(b)
			g.nodes[id].support = 1
			if prev >= 0 {
				g.addEdge(prev, id)
			}
			prev = id
			path = append(path, id)
		}
		g.setPath(path)
		return
	}

	pairs := g.alignToGraph(s)
	last := -1
	for _, pr := range pairs {
		switch {
		case pr.node >= 0 && pr.pos >= 0: // match or substitution column
			b := s[pr.pos]
			target := -1
			if g.nodes[pr.node].base == b {
				target = pr.node
			} else {
				for _, sib := range g.nodes[pr.node].aligned {
					if g.nodes[sib].base == b {
						target = sib
						break
					}
				}
			}
			if target == -1 {
				// Join the alignment ring of pr.node. The ring is a complete
				// clique, so pr.node plus its aligned list enumerates it; the
				// sibs view is taken before target joins, so the loop visits
				// exactly the pre-existing members.
				sibs := g.nodes[pr.node].aligned
				target = g.newNode(b)
				g.nodes[pr.node].aligned = append(g.nodes[pr.node].aligned, target)
				g.nodes[target].aligned = append(g.nodes[target].aligned, pr.node)
				for i := 0; i < len(sibs); i++ {
					member := sibs[i]
					g.nodes[member].aligned = append(g.nodes[member].aligned, target)
					g.nodes[target].aligned = append(g.nodes[target].aligned, member)
				}
			}
			g.nodes[target].support++
			if last >= 0 {
				g.addEdge(last, target)
			}
			last = target
			path = append(path, target)
		case pr.pos >= 0: // insertion: brand-new node
			id := g.newNode(s[pr.pos])
			g.nodes[id].support = 1
			if last >= 0 {
				g.addEdge(last, id)
			}
			last = id
			path = append(path, id)
		default: // deletion: the read skips this node
		}
	}
	g.setPath(path)
}

// Column summarizes one alignment column of the MSA induced by the graph.
type Column struct {
	Counts [dna.NumBases]int // reads voting for each base
	Gaps   int               // reads with no base in this column
}

// Coverage returns the number of reads that have a base in the column.
func (c Column) Coverage() int {
	n := 0
	for _, v := range c.Counts {
		n += v
	}
	return n
}

// Majority returns the plurality base of the column and whether the column
// should appear in a consensus: the base must match or outvote the gaps
// (ties keep the base). Tie-keeping is deliberate, not an off-by-one: under
// the indel channel a *true* column's votes routinely tie the gap count
// (half the reads deleted the base), and dropping it would delete a real
// base with no recourse — whereas a tied spurious insertion that survives
// here is still removed by the indel-heavy column trim in Consensus
// (§VII-C). Measured on the Fig. 6 workload, strict-majority dropping raises
// the NW per-index error above BMA's; see TestMajorityTieSemantics.
func (c Column) Majority() (dna.Base, bool) {
	best, bestN := dna.A, -1
	for b, n := range c.Counts {
		if n > bestN {
			best, bestN = dna.Base(b), n
		}
	}
	return best, bestN >= c.Gaps && bestN > 0
}

// columns groups nodes into alignment columns (union of `aligned` rings) and
// returns, per column, its member nodes, ordered consistently with the node
// partial order.
func (g *Graph) columnNodes() [][]int {
	colOf := make([]int, len(g.nodes))
	for i := range colOf {
		colOf[i] = -1
	}
	var cols [][]int
	for i := range g.nodes {
		if colOf[i] >= 0 {
			continue
		}
		id := len(cols)
		members := []int{i}
		colOf[i] = id
		// aligned rings are maintained as complete cliques, so one hop is
		// enough; walk transitively anyway for safety.
		stack := append([]int(nil), g.nodes[i].aligned...)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if colOf[n] >= 0 {
				continue
			}
			colOf[n] = id
			members = append(members, n)
			stack = append(stack, g.nodes[n].aligned...)
		}
		cols = append(cols, members)
	}

	// Order columns topologically using the contracted column DAG.
	nCols := len(cols)
	succ := make([]map[int]bool, nCols)
	indeg := make([]int, nCols)
	for i := range succ {
		succ[i] = map[int]bool{}
	}
	for to := range g.nodes {
		for _, from := range g.nodes[to].preds {
			a, b := colOf[from], colOf[to]
			if a != b && !succ[a][b] {
				succ[a][b] = true
				indeg[b]++
			}
		}
	}
	var ready []int
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	sort.Ints(ready)
	order := make([]int, 0, nCols)
	seen := make([]bool, nCols)
	for len(order) < nCols {
		if len(ready) == 0 {
			// Conflicting read orders created a cycle between columns;
			// break it deterministically at the smallest unseen column.
			for i := range seen {
				if !seen[i] {
					ready = append(ready, i)
					break
				}
			}
		}
		c := ready[0]
		ready = ready[1:]
		if seen[c] {
			continue
		}
		seen[c] = true
		order = append(order, c)
		for s := range succ[c] {
			indeg[s]--
			if indeg[s] <= 0 && !seen[s] {
				pos := sort.SearchInts(ready, s)
				ready = append(ready, 0)
				copy(ready[pos+1:], ready[pos:])
				ready[pos] = s
			}
		}
	}
	out := make([][]int, 0, nCols)
	for _, c := range order {
		out = append(out, cols[c])
	}
	return out
}

// Columns returns the alignment columns in order, with per-base vote counts
// and gap counts across all added sequences.
func (g *Graph) Columns() []Column {
	colNodes := g.columnNodes()
	out := make([]Column, len(colNodes))
	total := len(g.paths)
	for i, members := range colNodes {
		covered := 0
		for _, n := range members {
			out[i].Counts[g.nodes[n].base] += g.nodes[n].support
			covered += g.nodes[n].support
		}
		out[i].Gaps = total - covered
	}
	return out
}

// Rows renders the multiple sequence alignment as one string per added
// sequence, using '-' for gaps. Intended for tests and debugging output.
func (g *Graph) Rows() []string {
	colNodes := g.columnNodes()
	colOf := make(map[int]int, len(g.nodes))
	for c, members := range colNodes {
		for _, n := range members {
			colOf[n] = c
		}
	}
	rows := make([]string, len(g.paths))
	for r, path := range g.paths {
		row := make([]byte, len(colNodes))
		for i := range row {
			row[i] = '-'
		}
		for _, n := range path {
			row[colOf[n]] = g.nodes[n].base.Byte()
		}
		rows[r] = string(row)
	}
	return rows
}

// Consensus returns the per-column majority consensus. Columns where gaps
// outnumber every base are dropped. If targetLen > 0 and the consensus is
// longer, the excess columns with the highest gap (indel) counts are omitted,
// as described in §VII-C of the paper.
func (g *Graph) Consensus(targetLen int) dna.Seq {
	cols := g.Columns()
	type kept struct {
		base dna.Base
		gaps int
		idx  int
	}
	var keep []kept
	for i, c := range cols {
		if b, ok := c.Majority(); ok {
			keep = append(keep, kept{b, c.Gaps, i})
		}
	}
	if targetLen > 0 && len(keep) > targetLen {
		excess := len(keep) - targetLen
		// Pick the `excess` kept columns with the most indels; stable and
		// deterministic (ties resolved by column index).
		byGaps := make([]int, len(keep))
		for i := range byGaps {
			byGaps[i] = i
		}
		sort.Slice(byGaps, func(a, b int) bool {
			if keep[byGaps[a]].gaps != keep[byGaps[b]].gaps {
				return keep[byGaps[a]].gaps > keep[byGaps[b]].gaps
			}
			return keep[byGaps[a]].idx < keep[byGaps[b]].idx
		})
		drop := map[int]bool{}
		for _, i := range byGaps[:excess] {
			drop[i] = true
		}
		filtered := keep[:0]
		for i, k := range keep {
			if !drop[i] {
				filtered = append(filtered, k)
			}
		}
		keep = filtered
	}
	out := make(dna.Seq, len(keep))
	for i, k := range keep {
		out[i] = k.base
	}
	return out
}

// ConsensusOf resets the graph, aligns all reads into it and returns the
// majority consensus, trimming to targetLen as described in §VII-C. It is
// the scratch-reusing entry point: a worker that holds one Graph and calls
// ConsensusOf per cluster pays no DP-table allocations after warmup.
func (g *Graph) ConsensusOf(reads []dna.Seq, targetLen int) dna.Seq {
	g.Reset()
	for _, r := range reads {
		g.AddSequence(r)
	}
	return g.Consensus(targetLen)
}

// Consensus aligns all reads into a fresh POA graph and returns the majority
// consensus, trimming to targetLen as described in §VII-C. It is the
// convenience entry point used by one-off callers; the reconstruction worker
// pool reuses a per-worker graph via ConsensusOf instead.
func Consensus(reads []dna.Seq, targetLen int) dna.Seq {
	return NewGraph().ConsensusOf(reads, targetLen)
}
