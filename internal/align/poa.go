// Package align implements partial-order alignment (POA) for multiple
// sequence alignment of noisy reads, following Lee, Grasso and Sharlow
// (Bioinformatics 2002) and Lee (Bioinformatics 2003). The toolkit's
// Needleman–Wunsch trace-reconstruction algorithm (§VII-C of the paper) is
// built on this package: reads of a cluster are aligned into a POA graph,
// the graph induces alignment columns, and the consensus strand is the
// per-column majority vote with indel-heavy columns trimmed to the expected
// strand length. It replaces the SIMD `spoa` library used by the paper.
//
// Alignment of a sequence to the graph is global Needleman–Wunsch over the
// graph's topological order, with affine-free spoa-like scores (match
// rewarded, substitution and gap penalized) so alignments anchor on exact
// runs.
package align

import (
	"slices"
	"sort"

	"dnastore/internal/dna"
)

// Alignment scores, spoa-like ratios: matches are rewarded so alignments
// anchor on long exact runs instead of drifting through zero-cost ties.
const (
	matchScore = 2
	subScore   = -3
	gapScore   = -4
)

type node struct {
	base    dna.Base
	preds   []int // predecessor node ids (edges into this node)
	edgeN   []int // parallel to preds: number of reads traversing the edge
	succs   []int // successor node ids
	aligned []int // ids of nodes in the same alignment column
	support int   // number of reads whose path includes this node
}

// Graph is a partial-order alignment graph. The zero value is not usable;
// construct with NewGraph. Graph is not safe for concurrent mutation;
// reconstruction parallelizes across clusters, one Graph per worker, reused
// across that worker's clusters via Reset.
//
//dnalint:scratch
type Graph struct {
	nodes   []node
	paths   [][]int // node path of each added sequence, in insertion order
	scratch poaScratch
	refDP   bool // force the exhaustive-DP alignment kernel (SetReferenceDP)
}

// poaScratch holds the DP and traversal buffers reused across AddSequence
// calls: flat score/move/from tables indexed node*(m+1)+j, the virtual start
// row, Kahn's-algorithm working sets and the traceback pair list. Buffers
// grow on demand and are never shrunk, so after the first few reads the
// alignment of an additional read performs no table allocations at all.
//
//dnalint:scratch
type poaScratch struct {
	score []int
	move  []uint8
	from  []int32
	s0    []int
	indeg []int
	order []int
	ready []int
	pairs []pair

	// Live-window bounds per node row for the banded kernel (poa_fast.go):
	// winLo[id]..winHi[id] is the inclusive range of read positions whose DP
	// cell can still be on an alignment scoring above the pruning bound.
	winLo []int
	winHi []int

	// Column-machinery buffers (columnNodes): node→column assignment, ring
	// walk stack, member CSR, contracted-DAG edge words and Kahn working
	// sets. Kept separate from the alignment buffers above so a consensus
	// never invalidates alignment state mid-AddSequence.
	colOf     []int
	colStack  []int
	colCnt    []int
	colOff    []int
	colFlat   []int
	colEdges  []uint64
	colAdjOff []int
	colIndeg  []int
	colSeen   []uint8
	colReady  []int
	colOrder  []int
	colHdr    [][]int
}

// NewGraph returns an empty POA graph.
func NewGraph() *Graph { return &Graph{} }

// Reset clears the graph for reuse on a new cluster while keeping the node,
// path and DP scratch capacity. Reconstruction workers hold one Graph each
// and Reset it between clusters instead of allocating a fresh graph.
func (g *Graph) Reset() {
	g.nodes = g.nodes[:0]
	g.paths = g.paths[:0]
}

// NumSequences returns how many sequences have been added.
func (g *Graph) NumSequences() int { return len(g.paths) }

// NumNodes returns the number of graph nodes (for diagnostics).
func (g *Graph) NumNodes() int { return len(g.nodes) }

func (g *Graph) newNode(b dna.Base) int {
	if len(g.nodes) < cap(g.nodes) {
		// Reuse the slot (and its per-node slice capacity) left by Reset.
		g.nodes = g.nodes[:len(g.nodes)+1]
		n := &g.nodes[len(g.nodes)-1]
		n.base = b
		n.preds = n.preds[:0]
		n.edgeN = n.edgeN[:0]
		n.succs = n.succs[:0]
		n.aligned = n.aligned[:0]
		n.support = 0
	} else {
		g.nodes = append(g.nodes, node{base: b})
	}
	return len(g.nodes) - 1
}

func (g *Graph) addEdge(from, to int) {
	n := &g.nodes[to]
	for i, p := range n.preds {
		if p == from {
			n.edgeN[i]++
			return
		}
	}
	n.preds = append(n.preds, from)
	n.edgeN = append(n.edgeN, 1)
	g.nodes[from].succs = append(g.nodes[from].succs, to)
}

// growInts returns buf resized to length n, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// topoOrder returns the node ids in a topological order (Kahn's algorithm,
// smallest id first for determinism). The returned slice is backed by the
// graph's scratch and valid until the next topoOrder call.
func (g *Graph) topoOrder() []int {
	sc := &g.scratch
	sc.indeg = growInts(sc.indeg, len(g.nodes))
	indeg := sc.indeg
	for i := range g.nodes {
		indeg[i] = len(g.nodes[i].preds)
	}
	ready := growInts(sc.ready, len(g.nodes))[:0]
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	sort.Ints(ready)
	order := growInts(sc.order, len(g.nodes))[:0]
	// Pop from the front with a head index (instead of reslicing) so the
	// scratch buffer's base pointer survives for the next call; the pending
	// region ready[head:] is kept sorted.
	head := 0
	for head < len(ready) {
		n := ready[head]
		head++
		order = append(order, n)
		for _, s := range g.nodes[n].succs {
			indeg[s]--
			if indeg[s] == 0 {
				// Insert keeping the ready list sorted; lists are short.
				pos := head + sort.SearchInts(ready[head:], s)
				ready = append(ready, 0)
				copy(ready[pos+1:], ready[pos:])
				ready[pos] = s
			}
		}
	}
	sc.order = order
	sc.ready = ready[:0]
	return order
}

// alignment move codes for traceback.
const (
	moveNone = iota
	moveDiag // consume graph node + read base
	moveVert // consume graph node only (deletion in read)
	moveHorz // consume read base only (insertion in read)
)

// aligned pair produced by traceback: Node == -1 means insertion (read base
// with no node), Pos == -1 means deletion (node with no read base).
type pair struct {
	node int
	pos  int
}

// alignToGraph globally aligns s against the graph and returns the pair list
// in forward order. The returned slice is backed by the graph's scratch and
// valid until the next alignToGraph call.
//
// The default kernel is the windowed wavefront sweep (poa_fast.go), which
// bails out when the read aligns too badly for the score bound to hold and
// falls back to the exhaustive DP (poa_dp.go) — so the pair list is always
// bit-identical to the DP reference. SetReferenceDP forces the reference for
// differential tests and benchmarks.
func (g *Graph) alignToGraph(s dna.Seq) []pair {
	if g.refDP {
		return g.alignToGraphDP(s)
	}
	if pairs, ok := g.alignToGraphBanded(s); ok {
		return pairs
	}
	// Hopeless read: the banded sweep's live window collapsed before a
	// sink, so no alignment reaches the score bound. The read still has to
	// merge into the graph, and only the full table is exact down there.
	return g.alignToGraphDP(s)
}

// SetReferenceDP forces every subsequent alignment through the retained
// exhaustive-DP reference kernel instead of the windowed fast path. The two
// produce bit-identical pair lists on every input (the fast path proves its
// bound or falls back), so this exists only for differential tests, fuzzers
// and the throughput harness's old-vs-new rows.
func (g *Graph) SetReferenceDP(on bool) { g.refDP = on }

// traceback walks the move/from tables back from the sink cell (bestEnd, m)
// and returns the aligned pairs in forward order, backed by the graph's pair
// scratch. Both alignment kernels share it, so traceback behaviour cannot
// diverge between them.
func (g *Graph) traceback(bestEnd, m, stride int, move []uint8, from []int32) []pair {
	sc := &g.scratch
	rev := sc.pairs[:0]
	cur, tj := bestEnd, m
	for cur != -1 {
		switch move[cur*stride+tj] {
		case moveDiag:
			rev = append(rev, pair{cur, tj - 1})
			next := int(from[cur*stride+tj])
			cur, tj = next, tj-1
		case moveVert:
			rev = append(rev, pair{cur, -1})
			cur = int(from[cur*stride+tj])
		case moveHorz:
			rev = append(rev, pair{-1, tj - 1})
			tj--
		default:
			// Source node with moveNone at j==0 cannot happen because diag /
			// vert from the virtual start always sets a move; guard anyway.
			cur = -1
		}
	}
	// Leading insertions before the first graph node.
	for tj > 0 {
		rev = append(rev, pair{-1, tj - 1})
		tj--
	}
	// Reverse into forward order.
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	sc.pairs = rev[:0]
	return rev
}

// nextPathBuf extends g.paths by one slot and returns that slot's buffer,
// emptied: after a Reset the slot retains its previous backing array, so a
// reused graph records paths without reallocating them. The caller builds
// the path with append and stores the final header with setPath.
func (g *Graph) nextPathBuf(capHint int) []int {
	if len(g.paths) < cap(g.paths) {
		g.paths = g.paths[:len(g.paths)+1]
		return g.paths[len(g.paths)-1][:0]
	}
	g.paths = append(g.paths, make([]int, 0, capHint))
	return g.paths[len(g.paths)-1]
}

func (g *Graph) setPath(path []int) { g.paths[len(g.paths)-1] = path }

// AddSequence aligns s to the graph and merges it. The first sequence seeds
// the graph as a simple chain. Empty sequences are recorded with an empty
// path and do not modify the graph.
func (g *Graph) AddSequence(s dna.Seq) {
	path := g.nextPathBuf(len(s) + 1)
	if len(s) == 0 {
		g.setPath(path)
		return
	}
	if len(g.nodes) == 0 {
		prev := -1
		for _, b := range s {
			id := g.newNode(b)
			g.nodes[id].support = 1
			if prev >= 0 {
				g.addEdge(prev, id)
			}
			prev = id
			path = append(path, id)
		}
		g.setPath(path)
		return
	}

	pairs := g.alignToGraph(s)
	last := -1
	for _, pr := range pairs {
		switch {
		case pr.node >= 0 && pr.pos >= 0: // match or substitution column
			b := s[pr.pos]
			target := -1
			if g.nodes[pr.node].base == b {
				target = pr.node
			} else {
				for _, sib := range g.nodes[pr.node].aligned {
					if g.nodes[sib].base == b {
						target = sib
						break
					}
				}
			}
			if target == -1 {
				// Join the alignment ring of pr.node. The ring is a complete
				// clique, so pr.node plus its aligned list enumerates it; the
				// sibs view is taken before target joins, so the loop visits
				// exactly the pre-existing members.
				sibs := g.nodes[pr.node].aligned
				target = g.newNode(b)
				g.nodes[pr.node].aligned = append(g.nodes[pr.node].aligned, target)
				g.nodes[target].aligned = append(g.nodes[target].aligned, pr.node)
				for i := 0; i < len(sibs); i++ {
					member := sibs[i]
					g.nodes[member].aligned = append(g.nodes[member].aligned, target)
					g.nodes[target].aligned = append(g.nodes[target].aligned, member)
				}
			}
			g.nodes[target].support++
			if last >= 0 {
				g.addEdge(last, target)
			}
			last = target
			path = append(path, target)
		case pr.pos >= 0: // insertion: brand-new node
			id := g.newNode(s[pr.pos])
			g.nodes[id].support = 1
			if last >= 0 {
				g.addEdge(last, id)
			}
			last = id
			path = append(path, id)
		default: // deletion: the read skips this node
		}
	}
	g.setPath(path)
}

// Column summarizes one alignment column of the MSA induced by the graph.
type Column struct {
	Counts [dna.NumBases]int // reads voting for each base
	Gaps   int               // reads with no base in this column
}

// Coverage returns the number of reads that have a base in the column.
func (c Column) Coverage() int {
	n := 0
	for _, v := range c.Counts {
		n += v
	}
	return n
}

// Majority returns the plurality base of the column and whether the column
// should appear in a consensus: the base must match or outvote the gaps
// (ties keep the base). Tie-keeping is deliberate, not an off-by-one: under
// the indel channel a *true* column's votes routinely tie the gap count
// (half the reads deleted the base), and dropping it would delete a real
// base with no recourse — whereas a tied spurious insertion that survives
// here is still removed by the indel-heavy column trim in Consensus
// (§VII-C). Measured on the Fig. 6 workload, strict-majority dropping raises
// the NW per-index error above BMA's; see TestMajorityTieSemantics.
func (c Column) Majority() (dna.Base, bool) {
	best, bestN := dna.A, -1
	for b, n := range c.Counts {
		if n > bestN {
			best, bestN = dna.Base(b), n
		}
	}
	return best, bestN >= c.Gaps && bestN > 0
}

// columns groups nodes into alignment columns (union of `aligned` rings) and
// returns, per column, its member nodes, ordered consistently with the node
// partial order. The returned headers and member lists are backed by the
// graph's scratch and valid until the next columnNodes call; the contracted
// column DAG is built from sorted deduplicated edge words instead of
// per-column maps so a consensus performs no per-column allocations.
func (g *Graph) columnNodes() [][]int {
	sc := &g.scratch
	n := len(g.nodes)
	sc.colOf = growInts(sc.colOf, n)
	colOf := sc.colOf
	for i := range colOf {
		colOf[i] = -1
	}
	// Assign column ids in first-discovery order (ascending node id).
	// aligned rings are maintained as complete cliques, so one hop is
	// enough; walk transitively anyway for safety.
	stack := growInts(sc.colStack, n)[:0]
	nCols := 0
	for i := 0; i < n; i++ {
		if colOf[i] >= 0 {
			continue
		}
		id := nCols
		nCols++
		colOf[i] = id
		stack = append(stack, i)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.nodes[v].aligned {
				if colOf[w] < 0 {
					colOf[w] = id
					stack = append(stack, w)
				}
			}
		}
	}
	sc.colStack = stack[:0]

	// Member lists as one flat CSR, filled in ascending node id per column.
	sc.colCnt = growInts(sc.colCnt, nCols)
	cnt := sc.colCnt
	for c := 0; c < nCols; c++ {
		cnt[c] = 0
	}
	for i := 0; i < n; i++ {
		cnt[colOf[i]]++
	}
	sc.colOff = growInts(sc.colOff, nCols+1)
	off := sc.colOff
	off[0] = 0
	for c := 0; c < nCols; c++ {
		off[c+1] = off[c] + cnt[c]
		cnt[c] = 0
	}
	sc.colFlat = growInts(sc.colFlat, n)
	flat := sc.colFlat
	for i := 0; i < n; i++ {
		c := colOf[i]
		flat[off[c]+cnt[c]] = i
		cnt[c]++
	}

	// Contracted column DAG: edges packed src<<32|dst, sorted and
	// deduplicated, then walked as a CSR adjacency.
	edges := sc.colEdges[:0]
	for to := 0; to < n; to++ {
		bt := colOf[to]
		for _, from := range g.nodes[to].preds {
			if a := colOf[from]; a != bt {
				edges = append(edges, uint64(a)<<32|uint64(uint32(bt)))
			}
		}
	}
	slices.Sort(edges)
	edges = slices.Compact(edges)
	sc.colAdjOff = growInts(sc.colAdjOff, nCols+1)
	adjOff := sc.colAdjOff
	e := 0
	for c := 0; c < nCols; c++ {
		adjOff[c] = e
		for e < len(edges) && int(edges[e]>>32) == c {
			e++
		}
	}
	adjOff[nCols] = e

	sc.colIndeg = growInts(sc.colIndeg, nCols)
	indeg := sc.colIndeg
	for c := 0; c < nCols; c++ {
		indeg[c] = 0
	}
	for _, w := range edges {
		indeg[int(uint32(w))]++
	}
	if cap(sc.colSeen) < nCols {
		sc.colSeen = make([]uint8, nCols)
	}
	seen := sc.colSeen[:nCols]
	for c := range seen {
		seen[c] = 0
	}
	ready := growInts(sc.colReady, nCols)[:0]
	for c := 0; c < nCols; c++ {
		if indeg[c] == 0 {
			ready = append(ready, c)
		}
	}
	order := growInts(sc.colOrder, nCols)[:0]
	// Pop from the front with a head index; the pending region ready[head:]
	// is kept sorted so ties resolve to the smallest column id.
	head := 0
	for len(order) < nCols {
		if head == len(ready) {
			// Conflicting read orders created a cycle between columns;
			// break it deterministically at the smallest unseen column.
			for c := 0; c < nCols; c++ {
				if seen[c] == 0 {
					ready = append(ready, c)
					break
				}
			}
		}
		c := ready[head]
		head++
		if seen[c] != 0 {
			continue
		}
		seen[c] = 1
		order = append(order, c)
		for i := adjOff[c]; i < adjOff[c+1]; i++ {
			s := int(uint32(edges[i]))
			indeg[s]--
			if indeg[s] <= 0 && seen[s] == 0 {
				pos := head + sort.SearchInts(ready[head:], s)
				ready = append(ready, 0)
				copy(ready[pos+1:], ready[pos:])
				ready[pos] = s
			}
		}
	}
	sc.colEdges = edges[:0]
	sc.colReady = ready[:0]
	sc.colOrder = order

	if cap(sc.colHdr) < nCols {
		sc.colHdr = make([][]int, nCols)
	}
	hdr := sc.colHdr[:nCols]
	for i, c := range order {
		hdr[i] = flat[off[c]:off[c+1]]
	}
	return hdr
}

// Columns returns the alignment columns in order, with per-base vote counts
// and gap counts across all added sequences.
func (g *Graph) Columns() []Column {
	colNodes := g.columnNodes()
	out := make([]Column, len(colNodes))
	total := len(g.paths)
	for i, members := range colNodes {
		covered := 0
		for _, n := range members {
			out[i].Counts[g.nodes[n].base] += g.nodes[n].support
			covered += g.nodes[n].support
		}
		out[i].Gaps = total - covered
	}
	return out
}

// Rows renders the multiple sequence alignment as one string per added
// sequence, using '-' for gaps. Intended for tests and debugging output.
func (g *Graph) Rows() []string {
	colNodes := g.columnNodes()
	colOf := make(map[int]int, len(g.nodes))
	for c, members := range colNodes {
		for _, n := range members {
			colOf[n] = c
		}
	}
	rows := make([]string, len(g.paths))
	for r, path := range g.paths {
		row := make([]byte, len(colNodes))
		for i := range row {
			row[i] = '-'
		}
		for _, n := range path {
			row[colOf[n]] = g.nodes[n].base.Byte()
		}
		rows[r] = string(row)
	}
	return rows
}

// keptColumn is one column surviving the majority filter, carrying enough
// context for the §VII-C indel trim and for mapping back to the source column.
type keptColumn struct {
	base dna.Base
	gaps int
	idx  int // index into the Columns() slice
}

// consensusKeep applies the majority filter and the §VII-C indel-heavy trim
// to alignment columns: columns where gaps outnumber every base are dropped,
// and if targetLen > 0 and more than targetLen columns survive, the excess
// columns with the highest gap counts are omitted (ties resolved by column
// index, so the result is deterministic). Both Consensus and ConsensusColumns
// go through here, so "kept columns" means the same thing everywhere.
func consensusKeep(cols []Column, targetLen int) []keptColumn {
	var keep []keptColumn
	for i, c := range cols {
		if b, ok := c.Majority(); ok {
			keep = append(keep, keptColumn{b, c.Gaps, i})
		}
	}
	if targetLen > 0 && len(keep) > targetLen {
		excess := len(keep) - targetLen
		// Pick the `excess` kept columns with the most indels; stable and
		// deterministic (ties resolved by column index).
		byGaps := make([]int, len(keep))
		for i := range byGaps {
			byGaps[i] = i
		}
		sort.Slice(byGaps, func(a, b int) bool {
			if keep[byGaps[a]].gaps != keep[byGaps[b]].gaps {
				return keep[byGaps[a]].gaps > keep[byGaps[b]].gaps
			}
			return keep[byGaps[a]].idx < keep[byGaps[b]].idx
		})
		drop := map[int]bool{}
		for _, i := range byGaps[:excess] {
			drop[i] = true
		}
		filtered := keep[:0]
		for i, k := range keep {
			if !drop[i] {
				filtered = append(filtered, k)
			}
		}
		keep = filtered
	}
	return keep
}

// Consensus returns the per-column majority consensus. Columns where gaps
// outnumber every base are dropped. If targetLen > 0 and the consensus is
// longer, the excess columns with the highest gap (indel) counts are omitted,
// as described in §VII-C of the paper.
func (g *Graph) Consensus(targetLen int) dna.Seq {
	keep := consensusKeep(g.Columns(), targetLen)
	out := make(dna.Seq, len(keep))
	for i, k := range keep {
		out[i] = k.base
	}
	return out
}

// ConsensusColumns returns the consensus and, parallel to it base-for-base,
// the alignment columns that produced it — i.e. the columns that survived the
// majority filter and the §VII-C indel trim. Confidence metrics must be
// computed over these kept columns, not over Columns(), which still includes
// every trimmed indel-heavy column (see recon.ConsensusWithConfidence).
func (g *Graph) ConsensusColumns(targetLen int) (dna.Seq, []Column) {
	cols := g.Columns()
	keep := consensusKeep(cols, targetLen)
	out := make(dna.Seq, len(keep))
	keptCols := make([]Column, len(keep))
	for i, k := range keep {
		out[i] = k.base
		keptCols[i] = cols[k.idx]
	}
	return out, keptCols
}

// ConsensusOf resets the graph, aligns all reads into it and returns the
// majority consensus, trimming to targetLen as described in §VII-C. It is
// the scratch-reusing entry point: a worker that holds one Graph and calls
// ConsensusOf per cluster pays no DP-table allocations after warmup.
func (g *Graph) ConsensusOf(reads []dna.Seq, targetLen int) dna.Seq {
	g.Reset()
	for _, r := range reads {
		g.AddSequence(r)
	}
	return g.Consensus(targetLen)
}

// Consensus aligns all reads into a fresh POA graph and returns the majority
// consensus, trimming to targetLen as described in §VII-C. It is the
// convenience entry point used by one-off callers; the reconstruction worker
// pool reuses a per-worker graph via ConsensusOf instead.
func Consensus(reads []dna.Seq, targetLen int) dna.Seq {
	return NewGraph().ConsensusOf(reads, targetLen)
}
