// Package align implements partial-order alignment (POA) for multiple
// sequence alignment of noisy reads, following Lee, Grasso and Sharlow
// (Bioinformatics 2002) and Lee (Bioinformatics 2003). The toolkit's
// Needleman–Wunsch trace-reconstruction algorithm (§VII-C of the paper) is
// built on this package: reads of a cluster are aligned into a POA graph,
// the graph induces alignment columns, and the consensus strand is the
// per-column majority vote with indel-heavy columns trimmed to the expected
// strand length. It replaces the SIMD `spoa` library used by the paper.
//
// Alignment of a sequence to the graph is global Needleman–Wunsch over the
// graph's topological order, with affine-free spoa-like scores (match
// rewarded, substitution and gap penalized) so alignments anchor on exact
// runs.
package align

import (
	"sort"

	"dnastore/internal/dna"
)

// Alignment scores, spoa-like ratios: matches are rewarded so alignments
// anchor on long exact runs instead of drifting through zero-cost ties.
const (
	matchScore = 2
	subScore   = -3
	gapScore   = -4
)

type node struct {
	base    dna.Base
	preds   []int       // predecessor node ids (edges into this node)
	succs   []int       // successor node ids
	edgeW   map[int]int // pred id -> number of reads traversing the edge
	aligned []int       // ids of nodes in the same alignment column
	support int         // number of reads whose path includes this node
}

// Graph is a partial-order alignment graph. The zero value is not usable;
// construct with NewGraph. Graph is not safe for concurrent mutation;
// reconstruction parallelizes across clusters, one Graph per cluster.
type Graph struct {
	nodes []node
	paths [][]int // node path of each added sequence, in insertion order
}

// NewGraph returns an empty POA graph.
func NewGraph() *Graph { return &Graph{} }

// NumSequences returns how many sequences have been added.
func (g *Graph) NumSequences() int { return len(g.paths) }

// NumNodes returns the number of graph nodes (for diagnostics).
func (g *Graph) NumNodes() int { return len(g.nodes) }

func (g *Graph) newNode(b dna.Base) int {
	g.nodes = append(g.nodes, node{base: b, edgeW: map[int]int{}})
	return len(g.nodes) - 1
}

func (g *Graph) addEdge(from, to int) {
	n := &g.nodes[to]
	if _, ok := n.edgeW[from]; !ok {
		n.preds = append(n.preds, from)
		g.nodes[from].succs = append(g.nodes[from].succs, to)
	}
	n.edgeW[from]++
}

// topoOrder returns the node ids in a topological order (Kahn's algorithm,
// smallest id first for determinism).
func (g *Graph) topoOrder() []int {
	indeg := make([]int, len(g.nodes))
	for i := range g.nodes {
		indeg[i] = len(g.nodes[i].preds)
	}
	var heap []int
	for i, d := range indeg {
		if d == 0 {
			heap = append(heap, i)
		}
	}
	sort.Ints(heap)
	order := make([]int, 0, len(g.nodes))
	for len(heap) > 0 {
		n := heap[0]
		heap = heap[1:]
		order = append(order, n)
		for _, s := range g.nodes[n].succs {
			indeg[s]--
			if indeg[s] == 0 {
				// Insert keeping the ready list sorted; lists are short.
				pos := sort.SearchInts(heap, s)
				heap = append(heap, 0)
				copy(heap[pos+1:], heap[pos:])
				heap[pos] = s
			}
		}
	}
	return order
}

// alignment move codes for traceback.
const (
	moveNone = iota
	moveDiag // consume graph node + read base
	moveVert // consume graph node only (deletion in read)
	moveHorz // consume read base only (insertion in read)
)

// aligned pair produced by traceback: Node == -1 means insertion (read base
// with no node), Pos == -1 means deletion (node with no read base).
type pair struct {
	node int
	pos  int
}

// alignToGraph globally aligns s against the graph and returns the pair list
// in forward order.
func (g *Graph) alignToGraph(s dna.Seq) []pair {
	m := len(s)
	order := g.topoOrder()
	nNodes := len(g.nodes)

	// DP tables indexed [node id][read prefix length].
	score := make([][]int, nNodes)
	move := make([][]uint8, nNodes)
	from := make([][]int32, nNodes)
	for _, id := range order {
		score[id] = make([]int, m+1)
		move[id] = make([]uint8, m+1)
		from[id] = make([]int32, m+1)
	}
	// Virtual start: S0[j] = j*gap (leading insertions).
	s0 := make([]int, m+1)
	for j := 1; j <= m; j++ {
		s0[j] = j * gapScore
	}

	for _, id := range order {
		n := &g.nodes[id]
		row := score[id]
		for j := 0; j <= m; j++ {
			best := -1 << 30
			bestMove := uint8(moveNone)
			bestFrom := int32(-1)
			// Diagonal and vertical moves from each predecessor (or the
			// virtual start for source nodes).
			consider := func(prevRow []int, prevID int32) {
				if j >= 1 {
					sc := prevRow[j-1] + subScore
					if n.base == s[j-1] {
						sc = prevRow[j-1] + matchScore
					}
					if sc > best {
						best, bestMove, bestFrom = sc, moveDiag, prevID
					}
				}
				if sc := prevRow[j] + gapScore; sc > best {
					best, bestMove, bestFrom = sc, moveVert, prevID
				}
			}
			if len(n.preds) == 0 {
				consider(s0, -1)
			}
			for _, p := range n.preds {
				consider(score[p], int32(p))
			}
			// Horizontal: insertion in read.
			if j >= 1 {
				if sc := row[j-1] + gapScore; sc > best {
					best, bestMove, bestFrom = sc, moveHorz, int32(id)
				}
			}
			row[j] = best
			move[id][j] = bestMove
			from[id][j] = bestFrom
		}
	}

	// Global alignment ends at a sink node with the full read consumed.
	bestEnd, bestScore := -1, -1<<30
	for _, id := range order {
		if len(g.nodes[id].succs) == 0 && score[id][m] > bestScore {
			bestScore = score[id][m]
			bestEnd = id
		}
	}

	// Traceback.
	var rev []pair
	cur, j := bestEnd, m
	for cur != -1 {
		switch move[cur][j] {
		case moveDiag:
			rev = append(rev, pair{cur, j - 1})
			next := int(from[cur][j])
			cur, j = next, j-1
		case moveVert:
			rev = append(rev, pair{cur, -1})
			cur = int(from[cur][j])
		case moveHorz:
			rev = append(rev, pair{-1, j - 1})
			j--
		default:
			// Source node with moveNone at j==0 cannot happen because diag /
			// vert from the virtual start always sets a move; guard anyway.
			cur = -1
		}
	}
	// Leading insertions before the first graph node.
	for j > 0 {
		rev = append(rev, pair{-1, j - 1})
		j--
	}
	// Reverse into forward order.
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

// AddSequence aligns s to the graph and merges it. The first sequence seeds
// the graph as a simple chain. Empty sequences are recorded with an empty
// path and do not modify the graph.
func (g *Graph) AddSequence(s dna.Seq) {
	if len(s) == 0 {
		g.paths = append(g.paths, nil)
		return
	}
	if len(g.nodes) == 0 {
		path := make([]int, len(s))
		prev := -1
		for i, b := range s {
			id := g.newNode(b)
			g.nodes[id].support = 1
			if prev >= 0 {
				g.addEdge(prev, id)
			}
			prev = id
			path[i] = id
		}
		g.paths = append(g.paths, path)
		return
	}

	pairs := g.alignToGraph(s)
	var path []int
	last := -1
	for _, pr := range pairs {
		switch {
		case pr.node >= 0 && pr.pos >= 0: // match or substitution column
			b := s[pr.pos]
			target := -1
			if g.nodes[pr.node].base == b {
				target = pr.node
			} else {
				for _, sib := range g.nodes[pr.node].aligned {
					if g.nodes[sib].base == b {
						target = sib
						break
					}
				}
			}
			if target == -1 {
				target = g.newNode(b)
				// Join the alignment ring of pr.node.
				ring := append([]int{pr.node}, g.nodes[pr.node].aligned...)
				for _, member := range ring {
					g.nodes[member].aligned = append(g.nodes[member].aligned, target)
					g.nodes[target].aligned = append(g.nodes[target].aligned, member)
				}
			}
			g.nodes[target].support++
			if last >= 0 {
				g.addEdge(last, target)
			}
			last = target
			path = append(path, target)
		case pr.pos >= 0: // insertion: brand-new node
			id := g.newNode(s[pr.pos])
			g.nodes[id].support = 1
			if last >= 0 {
				g.addEdge(last, id)
			}
			last = id
			path = append(path, id)
		default: // deletion: the read skips this node
		}
	}
	g.paths = append(g.paths, path)
}

// Column summarizes one alignment column of the MSA induced by the graph.
type Column struct {
	Counts [dna.NumBases]int // reads voting for each base
	Gaps   int               // reads with no base in this column
}

// Coverage returns the number of reads that have a base in the column.
func (c Column) Coverage() int {
	n := 0
	for _, v := range c.Counts {
		n += v
	}
	return n
}

// Majority returns the plurality base of the column and whether the base
// outvotes the gaps (i.e. whether the column should appear in a consensus).
func (c Column) Majority() (dna.Base, bool) {
	best, bestN := dna.A, -1
	for b, n := range c.Counts {
		if n > bestN {
			best, bestN = dna.Base(b), n
		}
	}
	return best, bestN >= c.Gaps && bestN > 0
}

// columns groups nodes into alignment columns (union of `aligned` rings) and
// returns, per column, its member nodes, ordered consistently with the node
// partial order.
func (g *Graph) columnNodes() [][]int {
	colOf := make([]int, len(g.nodes))
	for i := range colOf {
		colOf[i] = -1
	}
	var cols [][]int
	for i := range g.nodes {
		if colOf[i] >= 0 {
			continue
		}
		id := len(cols)
		members := []int{i}
		colOf[i] = id
		// aligned rings are maintained as complete cliques, so one hop is
		// enough; walk transitively anyway for safety.
		stack := append([]int(nil), g.nodes[i].aligned...)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if colOf[n] >= 0 {
				continue
			}
			colOf[n] = id
			members = append(members, n)
			stack = append(stack, g.nodes[n].aligned...)
		}
		cols = append(cols, members)
	}

	// Order columns topologically using the contracted column DAG.
	nCols := len(cols)
	succ := make([]map[int]bool, nCols)
	indeg := make([]int, nCols)
	for i := range succ {
		succ[i] = map[int]bool{}
	}
	for to := range g.nodes {
		for _, from := range g.nodes[to].preds {
			a, b := colOf[from], colOf[to]
			if a != b && !succ[a][b] {
				succ[a][b] = true
				indeg[b]++
			}
		}
	}
	var ready []int
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	sort.Ints(ready)
	order := make([]int, 0, nCols)
	seen := make([]bool, nCols)
	for len(order) < nCols {
		if len(ready) == 0 {
			// Conflicting read orders created a cycle between columns;
			// break it deterministically at the smallest unseen column.
			for i := range seen {
				if !seen[i] {
					ready = append(ready, i)
					break
				}
			}
		}
		c := ready[0]
		ready = ready[1:]
		if seen[c] {
			continue
		}
		seen[c] = true
		order = append(order, c)
		for s := range succ[c] {
			indeg[s]--
			if indeg[s] <= 0 && !seen[s] {
				pos := sort.SearchInts(ready, s)
				ready = append(ready, 0)
				copy(ready[pos+1:], ready[pos:])
				ready[pos] = s
			}
		}
	}
	out := make([][]int, 0, nCols)
	for _, c := range order {
		out = append(out, cols[c])
	}
	return out
}

// Columns returns the alignment columns in order, with per-base vote counts
// and gap counts across all added sequences.
func (g *Graph) Columns() []Column {
	colNodes := g.columnNodes()
	out := make([]Column, len(colNodes))
	total := len(g.paths)
	for i, members := range colNodes {
		covered := 0
		for _, n := range members {
			out[i].Counts[g.nodes[n].base] += g.nodes[n].support
			covered += g.nodes[n].support
		}
		out[i].Gaps = total - covered
	}
	return out
}

// Rows renders the multiple sequence alignment as one string per added
// sequence, using '-' for gaps. Intended for tests and debugging output.
func (g *Graph) Rows() []string {
	colNodes := g.columnNodes()
	colOf := make(map[int]int, len(g.nodes))
	for c, members := range colNodes {
		for _, n := range members {
			colOf[n] = c
		}
	}
	rows := make([]string, len(g.paths))
	for r, path := range g.paths {
		row := make([]byte, len(colNodes))
		for i := range row {
			row[i] = '-'
		}
		for _, n := range path {
			row[colOf[n]] = g.nodes[n].base.Byte()
		}
		rows[r] = string(row)
	}
	return rows
}

// Consensus returns the per-column majority consensus. Columns where gaps
// outnumber every base are dropped. If targetLen > 0 and the consensus is
// longer, the excess columns with the highest gap (indel) counts are omitted,
// as described in §VII-C of the paper.
func (g *Graph) Consensus(targetLen int) dna.Seq {
	cols := g.Columns()
	type kept struct {
		base dna.Base
		gaps int
		idx  int
	}
	var keep []kept
	for i, c := range cols {
		if b, ok := c.Majority(); ok {
			keep = append(keep, kept{b, c.Gaps, i})
		}
	}
	if targetLen > 0 && len(keep) > targetLen {
		excess := len(keep) - targetLen
		// Pick the `excess` kept columns with the most indels; stable and
		// deterministic (ties resolved by column index).
		byGaps := make([]int, len(keep))
		for i := range byGaps {
			byGaps[i] = i
		}
		sort.Slice(byGaps, func(a, b int) bool {
			if keep[byGaps[a]].gaps != keep[byGaps[b]].gaps {
				return keep[byGaps[a]].gaps > keep[byGaps[b]].gaps
			}
			return keep[byGaps[a]].idx < keep[byGaps[b]].idx
		})
		drop := map[int]bool{}
		for _, i := range byGaps[:excess] {
			drop[i] = true
		}
		filtered := keep[:0]
		for i, k := range keep {
			if !drop[i] {
				filtered = append(filtered, k)
			}
		}
		keep = filtered
	}
	out := make(dna.Seq, len(keep))
	for i, k := range keep {
		out[i] = k.base
	}
	return out
}

// Consensus aligns all reads into a fresh POA graph and returns the majority
// consensus, trimming to targetLen as described in §VII-C. It is the
// convenience entry point used by the reconstruction module.
func Consensus(reads []dna.Seq, targetLen int) dna.Seq {
	g := NewGraph()
	for _, r := range reads {
		g.AddSequence(r)
	}
	return g.Consensus(targetLen)
}
