package rs

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzRSDecode drives Decode with fuzzer-chosen geometry, payloads and
// corruption. Three invariants must hold for every input:
//
//  1. Decode never panics, whatever the codeword bytes are;
//  2. a codeword corrupted within the code's correction capability
//     ((n-k)/2 errors) round-trips to the original data;
//  3. structurally malformed inputs fail with ErrShape, not a crash.
func FuzzRSDecode(f *testing.F) {
	f.Add([]byte("hello world"), byte(12), byte(8), byte(0))
	f.Add([]byte{}, byte(255), byte(1), byte(7))
	f.Add([]byte{0xff, 0x00, 0xa5}, byte(6), byte(2), byte(3))
	f.Fuzz(func(t *testing.T, data []byte, nb, kb, mut byte) {
		n := 2 + int(nb)%254   // 2..255
		k := 1 + int(kb)%(n-1) // 1..n-1
		code, err := New(n, k)
		if err != nil {
			t.Fatalf("New(%d,%d): %v", n, k, err)
		}

		payload := make([]byte, k)
		copy(payload, data)
		cw, err := code.Encode(payload)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}

		// Corrupt up to (n-k)/2 symbols at pseudo-random positions derived
		// from the fuzz input; decoding must still recover the payload.
		maxErr := (n - k) / 2
		corrupted := append([]byte(nil), cw...)
		pos := int(mut)
		for e := 0; e < maxErr; e++ {
			pos = (pos*31 + e + int(mut)) % n
			corrupted[pos] ^= mut | 1 // never a zero XOR: a real corruption
		}
		got, err := code.Decode(corrupted, nil)
		if err != nil {
			t.Fatalf("Decode failed within capability (n=%d k=%d, %d errors): %v", n, k, maxErr, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round-trip mismatch (n=%d k=%d): got %x want %x", n, k, got, payload)
		}

		// Arbitrary bytes of codeword length must never panic — any outcome
		// (data, ErrTooManyErrors) is acceptable, a crash is not.
		garbage := make([]byte, n)
		copy(garbage, data)
		if _, err := code.Decode(garbage, nil); err != nil && !errors.Is(err, ErrTooManyErrors) {
			t.Fatalf("Decode(garbage) returned unexpected error class: %v", err)
		}

		// Shape violations are typed, never panics or index faults.
		if _, err := code.Decode(nil, nil); !errors.Is(err, ErrShape) {
			t.Fatalf("Decode(nil) = %v, want ErrShape", err)
		}
		if _, err := code.Decode(cw[:len(cw)-1], nil); !errors.Is(err, ErrShape) {
			t.Fatalf("Decode(short) = %v, want ErrShape", err)
		}
		if _, err := code.Decode(cw, []int{n}); !errors.Is(err, ErrShape) {
			t.Fatalf("Decode(erasure out of range) = %v, want ErrShape", err)
		}
		if n-k >= 2 {
			if _, err := code.Decode(cw, []int{0, 0}); !errors.Is(err, ErrShape) {
				t.Fatalf("Decode(duplicate erasure) = %v, want ErrShape", err)
			}
		}
	})
}
