// Package rs implements systematic Reed–Solomon codes over GF(2^8) with
// correction of both errors and erasures. This is the outer code of the DNA
// storage architecture (§IV): every row of an encoding unit's matrix is one
// RS codeword, and molecules lost in the wetlab surface as column erasures.
//
// A Code with n total symbols and k data symbols corrects up to (n-k)/2
// symbol errors, or any mix with e errors and f erasures while 2e+f <= n-k.
// The implementation is the classical pipeline: syndromes, Forney syndromes
// to fold in erasures, Berlekamp–Massey for the error locator, Chien search
// for the positions, and the Forney algorithm for magnitudes.
package rs

import (
	"errors"
	"fmt"

	"dnastore/internal/gf256"
)

// Code is a Reed–Solomon code with fixed parameters. It is safe for
// concurrent use: encoding and decoding do not mutate the Code.
type Code struct {
	n, k  int
	genBE []byte // generator polynomial, big-endian (monic, genBE[0] = 1)
}

// ErrTooManyErrors is returned when a codeword is corrupted beyond the
// code's correction capability.
var ErrTooManyErrors = errors.New("rs: too many errors to correct")

// ErrShape is returned (wrapped, with detail) when Decode or Encode inputs
// are structurally malformed — nil or wrong-length codewords, erasure
// indices out of range or duplicated — as opposed to well-formed but
// uncorrectable codewords, which yield ErrTooManyErrors. Callers that
// retry with different erasure sets can use errors.Is(err, ErrShape) to
// tell "fix the call" apart from "the data is gone".
var ErrShape = errors.New("malformed input shape")

// New returns a Reed–Solomon code with n total symbols of which k are data.
// Requires 0 < k < n <= 255.
func New(n, k int) (*Code, error) {
	if k <= 0 || k >= n || n > 255 {
		return nil, fmt.Errorf("rs: invalid parameters n=%d k=%d (need 0 < k < n <= 255)", n, k)
	}
	nsym := n - k
	// g(x) = Π_{j=0}^{nsym-1} (x - α^j), built in ascending order.
	gen := gf256.Poly{1}
	for j := 0; j < nsym; j++ {
		gen = gf256.MulPoly(gen, gf256.Poly{gf256.Exp(j), 1})
	}
	genBE := make([]byte, len(gen))
	for i, c := range gen {
		genBE[len(gen)-1-i] = c
	}
	return &Code{n: n, k: k, genBE: genBE}, nil
}

// N returns the codeword length in symbols.
func (c *Code) N() int { return c.n }

// K returns the number of data symbols per codeword.
func (c *Code) K() int { return c.k }

// Parity returns the number of parity symbols (n - k).
func (c *Code) Parity() int { return c.n - c.k }

// Encode appends parity to data, returning a systematic codeword of length n.
// len(data) must equal K().
func (c *Code) Encode(data []byte) ([]byte, error) {
	if len(data) != c.k {
		return nil, fmt.Errorf("rs: Encode needs %d data bytes, got %d: %w", c.k, len(data), ErrShape)
	}
	out := make([]byte, c.n)
	copy(out, data)
	// Synthetic division of data(x)·x^nsym by the monic generator; the
	// remainder left in the tail is the parity.
	for i := 0; i < c.k; i++ {
		coef := out[i]
		if coef == 0 {
			continue
		}
		for j := 1; j < len(c.genBE); j++ {
			out[i+j] ^= gf256.Mul(c.genBE[j], coef)
		}
	}
	copy(out, data) // the division clobbered the data prefix; restore it
	return out, nil
}

// syndromes returns S_j = R(α^j) for j = 0..nsym-1 and whether all are zero.
func (c *Code) syndromes(cw []byte) ([]byte, bool) {
	nsym := c.n - c.k
	synd := make([]byte, nsym)
	clean := true
	for j := 0; j < nsym; j++ {
		x := gf256.Exp(j)
		var y byte
		for _, v := range cw {
			y = gf256.Mul(y, x) ^ v
		}
		synd[j] = y
		if y != 0 {
			clean = false
		}
	}
	return synd, clean
}

// Decode corrects a received codeword in a copy and returns the data
// symbols. erasures lists known-bad codeword indices (0-based); it may be
// nil. Decode returns ErrTooManyErrors when correction is impossible or the
// corrected word fails re-validation.
func (c *Code) Decode(codeword []byte, erasures []int) ([]byte, error) {
	if len(codeword) != c.n {
		return nil, fmt.Errorf("rs: Decode needs %d symbols, got %d: %w", c.n, len(codeword), ErrShape)
	}
	nsym := c.n - c.k
	if len(erasures) > nsym {
		return nil, ErrTooManyErrors
	}
	var seen [256]bool
	for _, e := range erasures {
		if e < 0 || e >= c.n {
			return nil, fmt.Errorf("rs: erasure index %d out of range [0,%d): %w", e, c.n, ErrShape)
		}
		if seen[e] {
			// A duplicated erasure would put a repeated root in the erasure
			// locator and silently waste correction capability.
			return nil, fmt.Errorf("rs: duplicate erasure index %d: %w", e, ErrShape)
		}
		seen[e] = true
	}

	cw := append([]byte(nil), codeword...)
	synd, clean := c.syndromes(cw)
	if clean {
		return cw[:c.k], nil
	}

	// Erasure locator Λ_e(x) = Π (1 - X x) with X = α^(n-1-i).
	erasureLoc := gf256.Poly{1}
	for _, i := range erasures {
		x := gf256.Exp(c.n - 1 - i)
		erasureLoc = gf256.MulPoly(erasureLoc, gf256.Poly{1, x})
	}

	// Forney syndromes: remove the erasure contribution so Berlekamp–Massey
	// sees errors only. Each erasure consumes one syndrome.
	fsynd := append([]byte(nil), synd...)
	for _, i := range erasures {
		x := gf256.Exp(c.n - 1 - i)
		for j := 0; j < len(fsynd)-1; j++ {
			fsynd[j] = gf256.Mul(fsynd[j], x) ^ fsynd[j+1]
		}
		fsynd = fsynd[:len(fsynd)-1]
	}

	errLoc, err := berlekampMassey(fsynd)
	if err != nil {
		return nil, err
	}
	numErrors := errLoc.Degree()
	if 2*numErrors > len(fsynd) {
		return nil, ErrTooManyErrors
	}

	// Combined errata locator and its roots (Chien search over positions).
	loc := gf256.MulPoly(errLoc, erasureLoc)
	positions := make([]int, 0, loc.Degree())
	for i := 0; i < c.n; i++ {
		p := c.n - 1 - i
		if loc.Eval(gf256.Exp(-p)) == 0 {
			positions = append(positions, i)
		}
	}
	if len(positions) != loc.Degree() {
		return nil, ErrTooManyErrors
	}

	// Forney algorithm: Ω(x) = S(x)·Λ(x) mod x^nsym, then for each errata
	// position with X = α^p the magnitude is Y = X·Ω(X⁻¹)/Λ'(X⁻¹).
	omega := gf256.MulPoly(gf256.Poly(synd), loc)
	if len(omega) > nsym {
		omega = omega[:nsym]
	}
	deriv := loc.Deriv()
	for _, i := range positions {
		p := c.n - 1 - i
		xInv := gf256.Exp(-p)
		den := deriv.Eval(xInv)
		if den == 0 {
			return nil, ErrTooManyErrors
		}
		y := gf256.Div(gf256.Mul(gf256.Exp(p), omega.Eval(xInv)), den)
		cw[i] ^= y
	}

	if _, ok := c.syndromes(cw); !ok {
		return nil, ErrTooManyErrors
	}
	return cw[:c.k], nil
}

// berlekampMassey finds the minimal error-locator polynomial for the given
// (Forney) syndromes, in ascending order with constant term 1.
func berlekampMassey(synd []byte) (gf256.Poly, error) {
	cPoly := gf256.Poly{1}
	bPoly := gf256.Poly{1}
	l, m := 0, 1
	b := byte(1)
	for n := 0; n < len(synd); n++ {
		// Discrepancy d = S_n + Σ_{i=1..l} c_i S_{n-i}.
		d := synd[n]
		for i := 1; i <= l && i < len(cPoly); i++ {
			d ^= gf256.Mul(cPoly[i], synd[n-i])
		}
		if d == 0 {
			m++
			continue
		}
		scale := gf256.Div(d, b)
		// c(x) -= (d/b)·x^m·b(x)
		shifted := make(gf256.Poly, m+len(bPoly))
		for i, v := range bPoly {
			shifted[m+i] = gf256.Mul(v, scale)
		}
		next := gf256.AddPoly(cPoly, shifted)
		if 2*l <= n {
			bPoly = cPoly
			b = d
			l = n + 1 - l
			m = 1
		} else {
			m++
		}
		cPoly = next
	}
	if cPoly.Degree() != l {
		return nil, ErrTooManyErrors
	}
	return cPoly.Trim(), nil
}
