package rs

import (
	"bytes"
	"testing"
	"testing/quick"

	"dnastore/internal/xrand"
)

func mustCode(t *testing.T, n, k int) *Code {
	t.Helper()
	c, err := New(n, k)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	bad := [][2]int{{255, 255}, {10, 0}, {10, 10}, {10, 11}, {256, 100}, {0, 0}}
	for _, p := range bad {
		if _, err := New(p[0], p[1]); err == nil {
			t.Errorf("New(%d,%d) accepted", p[0], p[1])
		}
	}
	if _, err := New(255, 223); err != nil {
		t.Errorf("New(255,223) rejected: %v", err)
	}
}

func TestEncodeSystematic(t *testing.T) {
	c := mustCode(t, 20, 12)
	data := []byte("hello, world")
	cw, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(cw) != 20 {
		t.Fatalf("codeword len = %d", len(cw))
	}
	if !bytes.Equal(cw[:12], data) {
		t.Fatal("code is not systematic")
	}
}

func TestEncodeWrongLength(t *testing.T) {
	c := mustCode(t, 20, 12)
	if _, err := c.Encode(make([]byte, 11)); err == nil {
		t.Fatal("short data accepted")
	}
}

func TestDecodeCleanCodeword(t *testing.T) {
	c := mustCode(t, 30, 20)
	data := make([]byte, 20)
	for i := range data {
		data[i] = byte(i * 7)
	}
	cw, _ := c.Encode(data)
	got, err := c.Decode(cw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("clean decode mismatch")
	}
}

func TestDecodeWrongLength(t *testing.T) {
	c := mustCode(t, 30, 20)
	if _, err := c.Decode(make([]byte, 29), nil); err == nil {
		t.Fatal("wrong length accepted")
	}
}

func TestDecodeBadErasureIndex(t *testing.T) {
	c := mustCode(t, 30, 20)
	cw, _ := c.Encode(make([]byte, 20))
	if _, err := c.Decode(cw, []int{30}); err == nil {
		t.Fatal("out-of-range erasure accepted")
	}
	if _, err := c.Decode(cw, []int{-1}); err == nil {
		t.Fatal("negative erasure accepted")
	}
}

func corrupt(rng *xrand.RNG, cw []byte, positions []int) {
	for _, p := range positions {
		old := cw[p]
		for {
			v := byte(rng.Intn(256))
			if v != old {
				cw[p] = v
				break
			}
		}
	}
}

func distinctPositions(rng *xrand.RNG, n, count int) []int {
	perm := rng.Perm(n)
	return perm[:count]
}

func TestCorrectsMaxErrors(t *testing.T) {
	rng := xrand.New(1)
	c := mustCode(t, 40, 24) // t = 8
	data := make([]byte, 24)
	for trial := 0; trial < 200; trial++ {
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		cw, _ := c.Encode(data)
		corrupt(rng, cw, distinctPositions(rng, 40, 8))
		got, err := c.Decode(cw, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d: wrong data", trial)
		}
	}
}

func TestCorrectsMaxErasures(t *testing.T) {
	rng := xrand.New(2)
	c := mustCode(t, 40, 24) // 16 parity → 16 erasures
	data := make([]byte, 24)
	for trial := 0; trial < 100; trial++ {
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		cw, _ := c.Encode(data)
		er := distinctPositions(rng, 40, 16)
		corrupt(rng, cw, er)
		got, err := c.Decode(cw, er)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d: wrong data", trial)
		}
	}
}

func TestCorrectsMixedErrorsAndErasures(t *testing.T) {
	rng := xrand.New(3)
	c := mustCode(t, 60, 40) // 20 parity: e.g. 6 errors + 8 erasures (2*6+8=20)
	data := make([]byte, 40)
	for trial := 0; trial < 100; trial++ {
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		cw, _ := c.Encode(data)
		pos := distinctPositions(rng, 60, 14)
		erasures := pos[:8]
		errorsPos := pos[8:]
		corrupt(rng, cw, erasures)
		corrupt(rng, cw, errorsPos)
		got, err := c.Decode(cw, erasures)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d: wrong data", trial)
		}
	}
}

func TestErasedButCorrectSymbols(t *testing.T) {
	// Declaring erasures at positions that happen to be correct must still
	// decode (the magnitude is simply zero).
	c := mustCode(t, 30, 20)
	data := []byte("twenty data bytes!!!")
	cw, _ := c.Encode(data)
	got, err := c.Decode(cw, []int{0, 5, 29})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("mismatch")
	}
}

func TestRejectsTooManyErrors(t *testing.T) {
	rng := xrand.New(4)
	c := mustCode(t, 20, 16) // t = 2
	data := make([]byte, 16)
	failures := 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		cw, _ := c.Encode(data)
		corrupt(rng, cw, distinctPositions(rng, 20, 6))
		got, err := c.Decode(cw, nil)
		if err != nil {
			failures++
		} else if !bytes.Equal(got, data) {
			// Miscorrection to a different valid codeword is possible but
			// must be rare; count it as detected-by-caller here.
			failures++
		}
	}
	if failures < trials*95/100 {
		t.Fatalf("only %d/%d overloaded codewords rejected or miscorrected-visibly", failures, trials)
	}
}

func TestRejectsTooManyErasures(t *testing.T) {
	c := mustCode(t, 20, 16)
	cw, _ := c.Encode(make([]byte, 16))
	if _, err := c.Decode(cw, []int{0, 1, 2, 3, 4}); err != ErrTooManyErrors {
		t.Fatalf("got %v, want ErrTooManyErrors", err)
	}
}

func TestDecodeDoesNotMutateInput(t *testing.T) {
	c := mustCode(t, 20, 12)
	cw, _ := c.Encode([]byte("abcdefghijkl"))
	cw[3] ^= 0xFF
	snapshot := append([]byte(nil), cw...)
	if _, err := c.Decode(cw, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cw, snapshot) {
		t.Fatal("Decode mutated its input")
	}
}

func TestQuickRoundTripRandomNoise(t *testing.T) {
	c := mustCode(t, 48, 32) // t = 8
	rng := xrand.New(99)
	f := func(seed uint64, rawData []byte) bool {
		data := make([]byte, 32)
		copy(data, rawData)
		cw, err := c.Encode(data)
		if err != nil {
			return false
		}
		r := xrand.New(seed)
		nErr := r.Intn(9) // 0..8
		corrupt(rng, cw, distinctPositions(r, 48, nErr))
		got, err := c.Decode(cw, nil)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestManyParameterSets(t *testing.T) {
	rng := xrand.New(7)
	params := [][2]int{{255, 223}, {255, 239}, {100, 80}, {15, 9}, {5, 1}, {3, 1}}
	for _, p := range params {
		n, k := p[0], p[1]
		c := mustCode(t, n, k)
		data := make([]byte, k)
		for i := range data {
			data[i] = byte(rng.Intn(256))
		}
		cw, _ := c.Encode(data)
		tCap := (n - k) / 2
		corrupt(rng, cw, distinctPositions(rng, n, tCap))
		got, err := c.Decode(cw, nil)
		if err != nil {
			t.Errorf("(%d,%d): %v", n, k, err)
			continue
		}
		if !bytes.Equal(got, data) {
			t.Errorf("(%d,%d): wrong data", n, k)
		}
	}
}

func TestAllZeroAndAllFFData(t *testing.T) {
	c := mustCode(t, 32, 16)
	for _, fill := range []byte{0x00, 0xFF} {
		data := bytes.Repeat([]byte{fill}, 16)
		cw, _ := c.Encode(data)
		rng := xrand.New(uint64(fill) + 1)
		corrupt(rng, cw, distinctPositions(rng, 32, 8))
		got, err := c.Decode(cw, nil)
		if err != nil {
			t.Fatalf("fill %#x: %v", fill, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("fill %#x: mismatch", fill)
		}
	}
}

func BenchmarkEncode255_223(b *testing.B) {
	c, _ := New(255, 223)
	data := make([]byte, 223)
	b.SetBytes(223)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode255_223_8Errors(b *testing.B) {
	c, _ := New(255, 223)
	rng := xrand.New(1)
	data := make([]byte, 223)
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	clean, _ := c.Encode(data)
	cw := append([]byte(nil), clean...)
	corrupt(rng, cw, distinctPositions(rng, 255, 8))
	b.SetBytes(255)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(cw, nil); err != nil {
			b.Fatal(err)
		}
	}
}
