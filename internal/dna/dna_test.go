package dna

import (
	"testing"
	"testing/quick"

	"dnastore/internal/xrand"
)

func TestBaseLetters(t *testing.T) {
	cases := []struct {
		b Base
		c byte
	}{{A, 'A'}, {C, 'C'}, {G, 'G'}, {T, 'T'}}
	for _, tc := range cases {
		if tc.b.Byte() != tc.c {
			t.Errorf("%d.Byte() = %c, want %c", tc.b, tc.b.Byte(), tc.c)
		}
		got, ok := BaseFromByte(tc.c)
		if !ok || got != tc.b {
			t.Errorf("BaseFromByte(%c) = %v,%v", tc.c, got, ok)
		}
		lower := tc.c + 32
		got, ok = BaseFromByte(lower)
		if !ok || got != tc.b {
			t.Errorf("BaseFromByte(%c) = %v,%v", lower, got, ok)
		}
	}
}

func TestBaseFromByteRejectsOthers(t *testing.T) {
	for _, c := range []byte{'N', 'U', 'x', ' ', 0, '-'} {
		if _, ok := BaseFromByte(c); ok {
			t.Errorf("BaseFromByte(%q) accepted", c)
		}
	}
}

func TestComplement(t *testing.T) {
	pairs := map[Base]Base{A: T, C: G, G: C, T: A}
	for b, want := range pairs {
		if b.Complement() != want {
			t.Errorf("%v.Complement() = %v, want %v", b, b.Complement(), want)
		}
		if b.Complement().Complement() != b {
			t.Errorf("complement not involutive for %v", b)
		}
	}
}

func TestFromStringRoundTrip(t *testing.T) {
	s := "ACGTACGGTTAACC"
	q, err := FromString(s)
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != s {
		t.Fatalf("round trip: got %q want %q", q.String(), s)
	}
}

func TestFromStringLowercase(t *testing.T) {
	q, err := FromString("acgt")
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != "ACGT" {
		t.Fatalf("got %q", q.String())
	}
}

func TestFromStringInvalid(t *testing.T) {
	if _, err := FromString("ACGN"); err == nil {
		t.Fatal("expected error for N")
	}
}

func TestMustFromStringPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustFromString("XYZ")
}

func TestCloneIndependence(t *testing.T) {
	a := MustFromString("ACGT")
	b := a.Clone()
	b[0] = T
	if a[0] != A {
		t.Fatal("clone shares storage")
	}
}

func TestEqual(t *testing.T) {
	if !MustFromString("ACG").Equal(MustFromString("ACG")) {
		t.Fatal("equal sequences reported unequal")
	}
	if MustFromString("ACG").Equal(MustFromString("ACT")) {
		t.Fatal("unequal sequences reported equal")
	}
	if MustFromString("ACG").Equal(MustFromString("ACGT")) {
		t.Fatal("different lengths reported equal")
	}
}

func TestReverse(t *testing.T) {
	if got := MustFromString("ACGT").Reverse().String(); got != "TGCA" {
		t.Fatalf("Reverse = %q", got)
	}
}

func TestReverseComplement(t *testing.T) {
	if got := MustFromString("AACGT").ReverseComplement().String(); got != "ACGTT" {
		t.Fatalf("ReverseComplement = %q", got)
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		s := make(Seq, len(raw))
		for i, b := range raw {
			s[i] = Base(b & 3)
		}
		return s.ReverseComplement().ReverseComplement().Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGCContent(t *testing.T) {
	cases := []struct {
		s    string
		want float64
	}{
		{"", 0},
		{"AT", 0},
		{"GC", 1},
		{"ACGT", 0.5},
		{"GGGA", 0.75},
	}
	for _, tc := range cases {
		var q Seq
		if tc.s != "" {
			q = MustFromString(tc.s)
		}
		if got := q.GCContent(); got != tc.want {
			t.Errorf("GCContent(%q) = %v, want %v", tc.s, got, tc.want)
		}
	}
}

func TestMaxHomopolymer(t *testing.T) {
	cases := []struct {
		s    string
		want int
	}{
		{"", 0},
		{"A", 1},
		{"ACGT", 1},
		{"AACC", 2},
		{"ACGGGGT", 4},
		{"TTTTT", 5},
	}
	for _, tc := range cases {
		var q Seq
		if tc.s != "" {
			q = MustFromString(tc.s)
		}
		if got := q.MaxHomopolymer(); got != tc.want {
			t.Errorf("MaxHomopolymer(%q) = %d, want %d", tc.s, got, tc.want)
		}
	}
}

func TestIndex(t *testing.T) {
	s := MustFromString("ACGTACGT")
	cases := []struct {
		sub  string
		want int
	}{
		{"ACGT", 0},
		{"CGTA", 1},
		{"TACG", 3},
		{"GTT", -1},
		{"", 0},
	}
	for _, tc := range cases {
		var sub Seq
		if tc.sub != "" {
			sub = MustFromString(tc.sub)
		}
		if got := s.Index(sub); got != tc.want {
			t.Errorf("Index(%q) = %d, want %d", tc.sub, got, tc.want)
		}
	}
	if MustFromString("AC").Index(MustFromString("ACGT")) != -1 {
		t.Error("sub longer than s should be -1")
	}
}

func TestHamming(t *testing.T) {
	if d := Hamming(MustFromString("ACGT"), MustFromString("ACGA")); d != 1 {
		t.Fatalf("Hamming = %d", d)
	}
	if d := Hamming(MustFromString("AAAA"), MustFromString("TTTT")); d != 4 {
		t.Fatalf("Hamming = %d", d)
	}
}

func TestHammingPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Hamming(MustFromString("A"), MustFromString("AC"))
}

func TestRandomProperties(t *testing.T) {
	rng := xrand.New(1)
	s := Random(rng, 4000)
	if len(s) != 4000 {
		t.Fatalf("len = %d", len(s))
	}
	counts := [4]int{}
	for _, b := range s {
		if b > 3 {
			t.Fatalf("invalid base %d", b)
		}
		counts[b]++
	}
	for b, n := range counts {
		if n < 800 || n > 1200 {
			t.Errorf("base %d count %d far from uniform", b, n)
		}
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		s := FromBytes(data)
		if len(s) != len(data)*BasesPerByte {
			return false
		}
		back, err := ToBytes(s)
		if err != nil {
			return false
		}
		if len(back) != len(data) {
			return false
		}
		for i := range data {
			if back[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromBytesKnown(t *testing.T) {
	// 0b11_10_01_00 = 0xE4 → T G C A
	s := FromBytes([]byte{0xE4})
	if s.String() != "TGCA" {
		t.Fatalf("FromBytes(0xE4) = %q", s.String())
	}
}

func TestToBytesBadLength(t *testing.T) {
	if _, err := ToBytes(MustFromString("ACG")); err == nil {
		t.Fatal("expected error for length not multiple of 4")
	}
}

func TestEncodeDecodeUint(t *testing.T) {
	for _, v := range []uint64{0, 1, 3, 4, 255, 1023, 1 << 20} {
		w := 12
		s := EncodeUint(v, w)
		if len(s) != w {
			t.Fatalf("width %d != %d", len(s), w)
		}
		if got := DecodeUint(s); got != v {
			t.Fatalf("DecodeUint(EncodeUint(%d)) = %d", v, got)
		}
	}
}

func TestEncodeUintOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	EncodeUint(16, 2) // 2 bases hold 0..15
}

func TestUintWidth(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 1}, {1, 1}, {4, 1}, {5, 2}, {16, 2}, {17, 3}, {64, 3}, {65, 4}, {10000, 7},
	}
	for _, tc := range cases {
		if got := UintWidth(tc.n); got != tc.want {
			t.Errorf("UintWidth(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestUintWidthSufficient(t *testing.T) {
	f := func(n uint16) bool {
		if n == 0 {
			return true
		}
		w := UintWidth(int(n))
		// every index in [0,n) must fit
		s := EncodeUint(uint64(n-1), w)
		return DecodeUint(s) == uint64(n-1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
