// Package dna provides the base types for DNA sequences and the primitive
// operations the rest of the toolkit builds on: the {A,C,G,T} alphabet, the
// 2-bits-per-nucleotide mapping used by unconstrained coding (§II-D of the
// paper), reverse complements, GC-content and homopolymer statistics, and
// random sequence generation.
package dna

import (
	"fmt"
	"strings"

	"dnastore/internal/xrand"
)

// Base is a single nucleotide, stored as a 2-bit code: A=0, C=1, G=2, T=3.
// The ordering matches the unconstrained 2-bit encoding so that converting
// between binary data and bases is a direct bit reinterpretation.
type Base byte

// The four nucleotides.
const (
	A Base = 0
	C Base = 1
	G Base = 2
	T Base = 3
)

// NumBases is the alphabet size.
const NumBases = 4

// Byte returns the ASCII letter of the base.
func (b Base) Byte() byte { return "ACGT"[b&3] }

// String returns the one-letter name of the base.
func (b Base) String() string { return string(b.Byte()) }

// Complement returns the Watson–Crick complement (A↔T, C↔G).
func (b Base) Complement() Base { return 3 - (b & 3) }

// BaseFromByte converts an ASCII nucleotide letter (upper or lower case) to a
// Base. It reports false for any other byte (including N).
func BaseFromByte(c byte) (Base, bool) {
	switch c {
	case 'A', 'a':
		return A, true
	case 'C', 'c':
		return C, true
	case 'G', 'g':
		return G, true
	case 'T', 't':
		return T, true
	}
	return 0, false
}

// Seq is a DNA sequence: a slice of 2-bit base codes, one base per byte.
// It deliberately trades the 4× density of bit-packing for O(1) indexed
// access, which dominates clustering and reconstruction workloads.
type Seq []Base

// FromString parses an ASCII DNA string into a Seq. Characters outside
// {A,C,G,T,a,c,g,t} are an error.
func FromString(s string) (Seq, error) {
	out := make(Seq, len(s))
	for i := 0; i < len(s); i++ {
		b, ok := BaseFromByte(s[i])
		if !ok {
			return nil, fmt.Errorf("dna: invalid base %q at position %d", s[i], i)
		}
		out[i] = b
	}
	return out, nil
}

// MustFromString is FromString for known-good literals; it panics on error.
func MustFromString(s string) Seq {
	q, err := FromString(s)
	if err != nil {
		panic(err)
	}
	return q
}

// String renders the sequence as ASCII letters.
func (s Seq) String() string {
	var sb strings.Builder
	sb.Grow(len(s))
	for _, b := range s {
		sb.WriteByte(b.Byte())
	}
	return sb.String()
}

// Clone returns an independent copy of the sequence.
func (s Seq) Clone() Seq {
	return append(Seq(nil), s...)
}

// Equal reports whether two sequences are identical.
func (s Seq) Equal(t Seq) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Reverse returns the sequence in reverse order.
func (s Seq) Reverse() Seq {
	out := make(Seq, len(s))
	for i, b := range s {
		out[len(s)-1-i] = b
	}
	return out
}

// ReverseComplement returns the reverse complement, i.e. the sequence read
// off the opposite strand 5'→3'. Sequenced reads arrive in both orientations
// (§VIII), so the wetlab-data module uses this to normalize direction.
func (s Seq) ReverseComplement() Seq {
	out := make(Seq, len(s))
	for i, b := range s {
		out[len(s)-1-i] = b.Complement()
	}
	return out
}

// GCContent returns the fraction of G and C bases, or 0 for an empty
// sequence. Synthesis success favours GC-content near 0.5 (§II-D).
func (s Seq) GCContent() float64 {
	if len(s) == 0 {
		return 0
	}
	gc := 0
	for _, b := range s {
		if b == G || b == C {
			gc++
		}
	}
	return float64(gc) / float64(len(s))
}

// MaxHomopolymer returns the length of the longest run of one base.
func (s Seq) MaxHomopolymer() int {
	if len(s) == 0 {
		return 0
	}
	best, run := 1, 1
	for i := 1; i < len(s); i++ {
		if s[i] == s[i-1] {
			run++
			if run > best {
				best = run
			}
		} else {
			run = 1
		}
	}
	return best
}

// Index returns the first position at which sub occurs in s, or -1.
func (s Seq) Index(sub Seq) int {
	if len(sub) == 0 {
		return 0
	}
	if len(sub) > len(s) {
		return -1
	}
outer:
	for i := 0; i+len(sub) <= len(s); i++ {
		for j := range sub {
			if s[i+j] != sub[j] {
				continue outer
			}
		}
		return i
	}
	return -1
}

// Hamming returns the Hamming distance between equal-length sequences.
// It panics if the lengths differ; use edit.Levenshtein for unequal lengths.
func Hamming(a, b Seq) int {
	if len(a) != len(b) {
		panic("dna: Hamming on sequences of different lengths")
	}
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// Random returns a uniformly random sequence of length n.
func Random(rng *xrand.RNG, n int) Seq {
	s := make(Seq, n)
	for i := range s {
		s[i] = Base(rng.Intn(NumBases))
	}
	return s
}

// BasesPerByte is the number of bases required to encode one byte (4 bases
// at 2 bits per base).
const BasesPerByte = 4

// FromBytes converts binary data to bases at 2 bits per base, MSB first:
// byte 0b11_10_01_00 becomes T,G,C,A.
func FromBytes(data []byte) Seq {
	out := make(Seq, 0, len(data)*BasesPerByte)
	for _, by := range data {
		out = append(out,
			Base(by>>6&3), Base(by>>4&3), Base(by>>2&3), Base(by&3))
	}
	return out
}

// ToBytes converts bases back to binary. The length must be a multiple of 4.
func ToBytes(s Seq) ([]byte, error) {
	if len(s)%BasesPerByte != 0 {
		return nil, fmt.Errorf("dna: sequence length %d is not a multiple of %d", len(s), BasesPerByte)
	}
	out := make([]byte, len(s)/BasesPerByte)
	for i := range out {
		out[i] = byte(s[4*i]&3)<<6 | byte(s[4*i+1]&3)<<4 | byte(s[4*i+2]&3)<<2 | byte(s[4*i+3]&3)
	}
	return out, nil
}

// EncodeUint encodes v as exactly width bases, most significant base first.
// It panics if v does not fit in width bases (width*2 bits). Used for the
// per-molecule index field (§II-C).
func EncodeUint(v uint64, width int) Seq {
	if width < 0 || (width < 32 && v >= 1<<(2*uint(width))) {
		panic(fmt.Sprintf("dna: value %d does not fit in %d bases", v, width))
	}
	out := make(Seq, width)
	for i := width - 1; i >= 0; i-- {
		out[i] = Base(v & 3)
		v >>= 2
	}
	return out
}

// DecodeUint decodes a base-encoded unsigned integer written by EncodeUint.
func DecodeUint(s Seq) uint64 {
	var v uint64
	for _, b := range s {
		v = v<<2 | uint64(b&3)
	}
	return v
}

// UintWidth returns the minimum number of bases needed to represent values
// in [0, n), i.e. ceil(log4(n)), and at least 1.
func UintWidth(n int) int {
	w := 1
	for span := 4; span < n; span *= 4 {
		w++
	}
	return w
}
