package dnastore_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"dnastore"
)

// TestRealisticChannelRoundTrip pushes a file through the pipeline under
// the reference wetlab channel (position ramps, bursts, per-read quality
// dispersion) with skewed coverage and strand dropout — the most realistic
// configuration the toolkit offers.
func TestRealisticChannelRoundTrip(t *testing.T) {
	codec, err := dnastore.NewCodec(dnastore.CodecParams{
		N: 60, K: 40, PayloadBytes: 25, Seed: 101,
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe := dnastore.NewPipeline(codec,
		dnastore.SimOptions{
			Channel:  dnastore.NewReferenceWetlab(),
			Coverage: dnastore.SkewedCoverage{Mean: 20, Sigma: 0.4},
			Dropout:  0.03,
			Seed:     102,
		},
		dnastore.ClusterOptions{Seed: 103},
		dnastore.NWReconstruction{})
	data := bytes.Repeat([]byte("realistic wetlab conditions "), 40)
	res, err := pipe.Run(data, dnastore.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatalf("round trip failed under the reference channel: %v", res.Report)
	}
}

// TestGiniPipelineWithWGram combines the two non-default module choices.
func TestGiniPipelineWithWGram(t *testing.T) {
	codec, err := dnastore.NewCodec(dnastore.CodecParams{
		N: 60, K: 40, PayloadBytes: 25, Seed: 104, Layout: dnastore.Gini{},
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe := dnastore.NewPipeline(codec,
		dnastore.SimOptions{
			Channel:  dnastore.CalibratedIID(0.06),
			Coverage: dnastore.FixedCoverage(10),
			Seed:     105,
		},
		dnastore.ClusterOptions{Seed: 106, Mode: dnastore.WGram},
		dnastore.DoubleSidedBMAReconstruction{})
	data := []byte("gini layout + w-gram clustering + double-sided BMA")
	res, err := pipe.Run(data, dnastore.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatalf("round trip failed: %v", res.Report)
	}
}

// TestQuickPipelineProperty: arbitrary small payloads survive the pipeline
// at a moderate error rate. A bounded-count property test over the whole
// system.
func TestQuickPipelineProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline property test in -short mode")
	}
	codec, err := dnastore.NewCodec(dnastore.CodecParams{
		N: 24, K: 16, PayloadBytes: 12, Seed: 107,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := func(payload []byte, seedByte uint8) bool {
		if len(payload) > 300 {
			payload = payload[:300]
		}
		pipe := dnastore.NewPipeline(codec,
			dnastore.SimOptions{
				Channel:  dnastore.CalibratedIID(0.05),
				Coverage: dnastore.FixedCoverage(8),
				Seed:     uint64(seedByte),
			},
			dnastore.ClusterOptions{Seed: uint64(seedByte) + 1},
			dnastore.NWReconstruction{})
		res, err := pipe.Run(payload, dnastore.RunOptions{})
		return err == nil && bytes.Equal(res.Data, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
